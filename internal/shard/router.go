package shard

import (
	"fmt"
	"hash/fnv"

	"ssr/internal/dag"
)

// JobInfo is the router's view of a job being placed onto a shard.
type JobInfo struct {
	// ID and Name identify the job; Name (when set) is the hash routing
	// key so renumbered replays land identically.
	ID   dag.JobID
	Name string
	// Priority is the job's scheduling priority.
	Priority dag.Priority
	// MaxParallelism is the widest phase of the job's DAG — the peak slot
	// demand a shard must eventually serve.
	MaxParallelism int
	// TotalTasks is the job's task count across all phases.
	TotalTasks int
	// MaxDemand is the largest per-task slot capacity the job needs.
	MaxDemand int
	// Tenant is the job's owning tenant, carried for visibility and
	// accounting; the stock routers do not branch on it.
	Tenant string
}

// Load is the router's view of one shard's occupancy at placement time.
type Load struct {
	// Slots is the shard's total slot count.
	Slots int
	// Busy and Reserved are the shard's currently occupied and
	// reserved-idle slots.
	Busy     int
	Reserved int
	// Pending is the number of jobs routed to the shard that have not yet
	// finished.
	Pending int
	// Assigned is the cumulative number of jobs ever routed to the shard.
	Assigned int
}

// pressure is the shard's slot pressure: occupied plus reserved plus one
// slot of expected demand per unfinished routed job, relative to capacity.
func (l Load) pressure() float64 {
	if l.Slots == 0 {
		return 1
	}
	return float64(l.Busy+l.Reserved+l.Pending) / float64(l.Slots)
}

// free is the shard's currently unoccupied, unreserved capacity.
func (l Load) free() int { return l.Slots - l.Busy - l.Reserved }

// Router places incoming jobs onto shards. Pick returns the index of the
// chosen shard; loads has one entry per shard. Implementations must be
// deterministic functions of their inputs.
type Router interface {
	// Name returns the router's flag-facing name.
	Name() string
	// Pick chooses a home shard for the job.
	Pick(info JobInfo, loads []Load) int
}

// HashRouter places jobs by a stable FNV-1a hash of the job's name (or ID
// when unnamed), ignoring load. Placement depends only on the job itself,
// which keeps replays shard-stable and makes the K=1 vs K=4 determinism
// comparison meaningful.
type HashRouter struct{}

// Name implements Router.
func (HashRouter) Name() string { return "hash" }

// Pick implements Router.
func (HashRouter) Pick(info JobInfo, loads []Load) int {
	h := fnv.New32a()
	if info.Name != "" {
		h.Write([]byte(info.Name))
	} else {
		var buf [8]byte
		v := uint64(info.ID)
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return int(h.Sum32() % uint32(len(loads)))
}

// LeastLoadedRouter places each job on the shard with the lowest slot
// pressure (busy + reserved + pending jobs, relative to capacity), breaking
// ties toward fewer cumulative assignments and then the lowest index.
type LeastLoadedRouter struct{}

// Name implements Router.
func (LeastLoadedRouter) Name() string { return "least-loaded" }

// Pick implements Router.
func (LeastLoadedRouter) Pick(info JobInfo, loads []Load) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		pi, pb := loads[i].pressure(), loads[best].pressure()
		if pi < pb || (pi == pb && loads[i].Assigned < loads[best].Assigned) {
			best = i
		}
	}
	return best
}

// BestFitRouter is packing-aware: it places the job on the shard with the
// least free capacity that still fits the job's widest phase, so wide jobs
// keep finding shards they fit in whole (Shafiee & Ghaderi's placement
// constraint motivation). When no shard fits, it falls back to least-loaded.
type BestFitRouter struct{}

// Name implements Router.
func (BestFitRouter) Name() string { return "best-fit" }

// Pick implements Router.
func (BestFitRouter) Pick(info JobInfo, loads []Load) int {
	best := -1
	for i, l := range loads {
		if l.free() < info.MaxParallelism {
			continue
		}
		if best < 0 || l.free() < loads[best].free() {
			best = i
		}
	}
	if best < 0 {
		return LeastLoadedRouter{}.Pick(info, loads)
	}
	return best
}

// ParseRouter maps a flag value to a router. Valid names: "hash",
// "least-loaded", "best-fit".
func ParseRouter(name string) (Router, error) {
	switch name {
	case "hash":
		return HashRouter{}, nil
	case "least-loaded":
		return LeastLoadedRouter{}, nil
	case "best-fit":
		return BestFitRouter{}, nil
	default:
		return nil, fmt.Errorf("shard: unknown router %q (want hash, least-loaded or best-fit)", name)
	}
}
