package shard

import (
	"reflect"
	"testing"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/metrics"
	"ssr/internal/sim"
)

func durations(secs ...float64) []time.Duration {
	out := make([]time.Duration, len(secs))
	for i, s := range secs {
		out[i] = time.Duration(s * float64(time.Second))
	}
	return out
}

func chain(t *testing.T, id dag.JobID, name string, specs []dag.PhaseSpec, opts ...dag.Option) *dag.Job {
	t.Helper()
	j, err := dag.Chain(id, name, 5, specs, opts...)
	if err != nil {
		t.Fatalf("chain %q: %v", name, err)
	}
	return j
}

func ssrOptions() driver.Options {
	return driver.Options{
		Mode: driver.ModeSSR,
		SSR: core.Config{
			IsolationP:          0.9,
			Alpha:               1.1,
			PreReserveThreshold: 0.4,
		},
	}
}

func TestNodeSplit(t *testing.T) {
	got := NodeSplit(10, 4)
	want := []int{3, 3, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NodeSplit(10,4) = %v, want %v", got, want)
	}
	if got := NodeSplit(8, 1); !reflect.DeepEqual(got, []int{8}) {
		t.Fatalf("NodeSplit(8,1) = %v", got)
	}
}

func TestRouters(t *testing.T) {
	info := JobInfo{ID: 7, Name: "kmeans", MaxParallelism: 3}
	loads := []Load{
		{Slots: 4, Busy: 4},
		{Slots: 4, Busy: 1},
		{Slots: 4, Busy: 3},
		{Slots: 4},
	}
	h := HashRouter{}
	first := h.Pick(info, loads)
	for i := 0; i < 5; i++ {
		if got := h.Pick(info, loads); got != first {
			t.Fatalf("hash router not stable: %d then %d", first, got)
		}
	}
	if got := (LeastLoadedRouter{}).Pick(info, loads); got != 3 {
		t.Fatalf("least-loaded picked %d, want 3", got)
	}
	// Best fit: shards 1 and 3 fit 3 free slots; shard 1 has exactly 3
	// free (tighter) so it wins over the empty shard 3.
	if got := (BestFitRouter{}).Pick(info, loads); got != 1 {
		t.Fatalf("best-fit picked %d, want 1", got)
	}
	// Nothing fits a parallelism-9 job: fall back to least loaded.
	wide := JobInfo{Name: "wide", MaxParallelism: 9}
	if got := (BestFitRouter{}).Pick(wide, loads); got != 3 {
		t.Fatalf("best-fit fallback picked %d, want 3", got)
	}
	for _, name := range []string{"hash", "least-loaded", "best-fit"} {
		r, err := ParseRouter(name)
		if err != nil {
			t.Fatalf("ParseRouter(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Fatalf("router %q reports name %q", name, r.Name())
		}
	}
	if _, err := ParseRouter("nope"); err == nil {
		t.Fatal("ParseRouter accepted an unknown name")
	}
}

// testJobs builds a small mixed workload with known parallelism.
func testJobs(t *testing.T) []*dag.Job {
	t.Helper()
	var jobs []*dag.Job
	for i := 0; i < 6; i++ {
		specs := []dag.PhaseSpec{
			{Durations: durations(2, 2.5, 3, 2)},
			{Durations: durations(1, 1.5)},
		}
		jobs = append(jobs, chain(t, dag.JobID(i+1), "job-"+string(rune('a'+i)), specs,
			dag.WithKnownParallelism(),
			dag.WithSubmit(time.Duration(i)*500*time.Millisecond)))
	}
	return jobs
}

// TestFederationK1MatchesPlainDriver is the bit-identical K=1 guarantee:
// a single-shard federation must reproduce a plain driver's per-job stats
// exactly.
func TestFederationK1MatchesPlainDriver(t *testing.T) {
	runPlain := func() []metrics.JobStats {
		eng := sim.New()
		cl, err := cluster.New(4, 2)
		if err != nil {
			t.Fatal(err)
		}
		drv, err := driver.New(eng, cl, ssrOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range testJobs(t) {
			if err := drv.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		if err := drv.Run(); err != nil {
			t.Fatal(err)
		}
		return drv.Results()
	}
	runFed := func() []metrics.JobStats {
		fed, err := New(Options{Shards: 1, Nodes: 4, SlotsPerNode: 2, Driver: ssrOptions()})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range testJobs(t) {
			if idx, err := fed.Submit(j); err != nil || idx != 0 {
				t.Fatalf("submit: shard %d, err %v", idx, err)
			}
		}
		if err := fed.Run(); err != nil {
			t.Fatal(err)
		}
		if fed.Broker() != nil {
			t.Fatal("K=1 federation built a lending broker")
		}
		return fed.Results()
	}
	plain, fed := runPlain(), runFed()
	if len(plain) != len(fed) {
		t.Fatalf("job counts differ: %d vs %d", len(plain), len(fed))
	}
	for i := range plain {
		a, b := plain[i], fed[i]
		a.Job, b.Job = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("job %d stats differ:\nplain: %+v\nfed:   %+v", plain[i].Job.ID, a, b)
		}
	}
}

// shardDeterminismJobs builds the shard-local workload for the K=1 vs K=4
// comparison: jobs whose names hash-route them across 4 buckets, staggered
// within each bucket so a shard of 4 slots serves each job contention-free,
// while the K=1 run still overlaps jobs from different buckets.
func shardDeterminismJobs(t *testing.T) []*dag.Job {
	t.Helper()
	probe := make([]Load, 4)
	perBucket := make(map[int]int)
	var jobs []*dag.Job
	for i := 0; i < 12; i++ {
		name := "det-job-" + string(rune('a'+i))
		bucket := HashRouter{}.Pick(JobInfo{Name: name}, probe)
		at := time.Duration(perBucket[bucket]) * 30 * time.Second
		perBucket[bucket]++
		specs := []dag.PhaseSpec{
			{Durations: durations(2, 2, 2, 2)},
			{Durations: durations(1, 1)},
		}
		jobs = append(jobs, chain(t, dag.JobID(i+1), name, specs,
			dag.WithKnownParallelism(), dag.WithSubmit(at)))
	}
	return jobs
}

// TestShardDeterminismK1VsK4 replays the same hash-routed, shard-local
// workload at K=1 and K=4 over the same total capacity and demands
// identical per-job JCTs: shards only re-partition the cluster, they do not
// change any job's schedule when each job fits its home shard.
func TestShardDeterminismK1VsK4(t *testing.T) {
	run := func(k int) map[dag.JobID]time.Duration {
		fed, err := New(Options{
			Shards:       k,
			Nodes:        8,
			SlotsPerNode: 2,
			Driver:       ssrOptions(),
			Router:       HashRouter{},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range shardDeterminismJobs(t) {
			if _, err := fed.Submit(j); err != nil {
				t.Fatal(err)
			}
		}
		if err := fed.Run(); err != nil {
			t.Fatal(err)
		}
		out := make(map[dag.JobID]time.Duration)
		for _, st := range fed.Results() {
			out[st.Job.ID] = st.JCT()
			if st.BorrowedSlots != 0 {
				t.Fatalf("K=%d: job %d borrowed %d slots in a contention-free workload",
					k, st.Job.ID, st.BorrowedSlots)
			}
		}
		return out
	}
	k1, k4 := run(1), run(4)
	if len(k1) != len(k4) {
		t.Fatalf("job counts differ: %d vs %d", len(k1), len(k4))
	}
	for id, jct := range k1 {
		if k4[id] != jct {
			t.Errorf("job %d JCT: K=1 %v, K=4 %v", id, jct, k4[id])
		}
	}
	// Replays of the same K must also be bit-identical.
	again := run(4)
	if !reflect.DeepEqual(k4, again) {
		t.Fatal("K=4 replay diverged from itself")
	}
}

// lendingFed builds a 2-shard federation where shard homes have 2 slots
// each, so a job with downstream parallelism 4 must borrow.
func lendingFed(t *testing.T, frac float64) *Federation {
	t.Helper()
	fed, err := New(Options{
		Shards:       2,
		Nodes:        2,
		SlotsPerNode: 2,
		Driver:       ssrOptions(),
		Router:       HashRouter{},
		Lending:      LendingConfig{MaxLendFraction: frac},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

// TestCrossShardLending is the Algorithm 1 n > m case across shards: the
// home shard has m = 2 slots, downstream parallelism n = 4, so past
// threshold R the broker checks 2 sibling slots out, downstream tasks run
// on them remotely, and the slots travel home when they finish.
func TestCrossShardLending(t *testing.T) {
	fed := lendingFed(t, 1.0)
	job := chain(t, 1, "borrower", []dag.PhaseSpec{
		{Durations: durations(1, 1.2)},
		{Durations: durations(1, 1, 1, 1)},
	}, dag.WithKnownParallelism())
	home, err := fed.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.Run(); err != nil {
		t.Fatal(err)
	}
	st, ok := fed.Result(job.ID)
	if !ok {
		t.Fatal("job missing from results")
	}
	if st.BorrowedSlots != 2 {
		t.Errorf("BorrowedSlots = %d, want 2", st.BorrowedSlots)
	}
	if st.RemoteTasks != 2 {
		t.Errorf("RemoteTasks = %d, want 2", st.RemoteTasks)
	}
	stats := fed.Broker().Stats()
	if stats.Granted != 2 || stats.Consumed != 2 || stats.Finished != 2 {
		t.Errorf("broker stats %+v, want 2 granted/consumed/finished", stats)
	}
	if n := fed.Broker().Outstanding(); n != 0 {
		t.Errorf("%d loans outstanding after run", n)
	}
	sibling := fed.Shards()[1-home].Cl
	if free := sibling.CountState(cluster.Free); free != sibling.NumSlots() {
		t.Errorf("sibling has %d/%d slots free after run", free, sibling.NumSlots())
	}
	// The borrowed capacity must actually shorten the job: phase 1's four
	// tasks run fully parallel (one 1s wave after the 1.2s upstream
	// phase) instead of two waves on the two home slots.
	if want := 2200 * time.Millisecond; st.JCT() != want {
		t.Errorf("JCT = %v, want %v (full downstream parallelism)", st.JCT(), want)
	}
}

// TestLendingRespectsFraction caps the lender at half its capacity: only
// one of the sibling's two slots may be checked out.
func TestLendingRespectsFraction(t *testing.T) {
	fed := lendingFed(t, 0.5)
	job := chain(t, 1, "borrower", []dag.PhaseSpec{
		{Durations: durations(1, 1.2)},
		{Durations: durations(1, 1, 1, 1)},
	}, dag.WithKnownParallelism())
	if _, err := fed.Submit(job); err != nil {
		t.Fatal(err)
	}
	if err := fed.Run(); err != nil {
		t.Fatal(err)
	}
	st, _ := fed.Result(job.ID)
	if st.BorrowedSlots != 1 {
		t.Errorf("BorrowedSlots = %d, want 1 under MaxLendFraction 0.5", st.BorrowedSlots)
	}
	if n := fed.Broker().Outstanding(); n != 0 {
		t.Errorf("%d loans outstanding after run", n)
	}
}

// TestLendingReturnsAtDeadline pins the reservation-deadline D protocol
// across shards: a straggling upstream task holds the barrier past D, so
// the borrowed slots are returned unused at expiry, together with the home
// shard's own reservations (Fig. 7b generalized to the federation).
func TestLendingReturnsAtDeadline(t *testing.T) {
	fed := lendingFed(t, 1.0)
	job := chain(t, 1, "straggler", []dag.PhaseSpec{
		{Durations: durations(1, 500)},
		{Durations: durations(1, 1, 1, 1)},
	}, dag.WithKnownParallelism())
	home, err := fed.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	// Watch the sibling while the run progresses: loans must be back well
	// before the straggler ends at t=500s.
	sibling := fed.Shards()[1-home]
	backAt := sim.Time(-1)
	for fed.Step() {
		if backAt < 0 && fed.Broker().Stats().Returned > 0 {
			backAt = fed.now
		}
	}
	for _, sh := range fed.Shards() {
		if n := sh.Drv.Unfinished(); n > 0 {
			t.Fatalf("shard %d: %d unfinished", sh.Index, n)
		}
	}
	st, _ := fed.Result(job.ID)
	if st.BorrowedSlots != 2 {
		t.Errorf("BorrowedSlots = %d, want 2", st.BorrowedSlots)
	}
	if st.DeadlineExpiries != 1 {
		t.Errorf("DeadlineExpiries = %d, want 1", st.DeadlineExpiries)
	}
	if st.RemoteTasks != 0 {
		t.Errorf("RemoteTasks = %d, want 0 (loans expired unused)", st.RemoteTasks)
	}
	stats := fed.Broker().Stats()
	if stats.Returned != 2 {
		t.Errorf("broker returned %d loans, want 2", stats.Returned)
	}
	if backAt < 0 || backAt > 100*time.Second {
		t.Errorf("loans returned at %v, want at deadline expiry well before the 500s straggler", backAt)
	}
	if free := sibling.Cl.CountState(cluster.Free); free != sibling.Cl.NumSlots() {
		t.Errorf("sibling has %d/%d slots free after run", free, sibling.Cl.NumSlots())
	}
	if n := fed.Broker().Outstanding(); n != 0 {
		t.Errorf("%d loans outstanding after run", n)
	}
}
