package shard

import (
	"sort"
	"sync"

	"ssr/internal/cluster"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/sim"
)

// LendingConfig parameterizes the cross-shard lending broker.
type LendingConfig struct {
	// Disabled turns cross-shard lending off; every shard then schedules
	// strictly within its own partition.
	Disabled bool
	// MaxLendFraction caps how much of a shard's capacity may be lent out
	// at once, so a borrowing storm cannot starve the lender's own
	// workload. Default 0.5.
	MaxLendFraction float64
}

func (c LendingConfig) withDefaults() LendingConfig {
	if c.MaxLendFraction == 0 {
		c.MaxLendFraction = 0.5
	}
	return c
}

// LoanStats aggregates the broker's lifetime lending activity.
type LoanStats struct {
	// Requests counts Borrow calls that reached the broker.
	Requests int
	// Granted counts slots checked out to borrowers.
	Granted int
	// Consumed counts grants that went on to run a task.
	Consumed int
	// Finished counts consumed grants released after their task ended.
	Finished int
	// Returned counts idle grants handed back unused (deadline expiry,
	// reconciliation, or job end).
	Returned int
}

// Peer is one shard as the broker reaches it. The broker checks slots out
// of a peer's cluster and releases them back strictly inside the peer's
// engine context, supplied by Call / At.
type Peer struct {
	// Cluster is the shard's slot pool.
	Cluster *cluster.Cluster
	// Driver is the shard's scheduler; the broker pokes it when a loan
	// returns capacity, and resolves asynchronous borrows through it.
	Driver *driver.Driver
	// Call runs fn synchronously in the shard's engine context. The
	// offline federation steps every engine on one goroutine, so its
	// Call just invokes fn; the online service passes
	// realtime.Runner.Call. A Call error (runner stopped) aborts the
	// operation silently.
	Call func(fn func()) error
	// At schedules fn in the shard's engine context at virtual time t.
	// Only the offline federation sets it (t is the global instant of
	// the triggering event, always >= the shard's local clock); the
	// online broker defers through Call on its worker goroutine instead.
	At func(t sim.Time, fn func())
	// Now reports the shard's current virtual clock; used with At.
	Now func() sim.Time
}

// loanRec is the broker's record of one checked-out slot.
type loanRec struct {
	id       driver.LoanID
	job      dag.JobID
	phase    int    // borrowing phase
	home     int    // borrower shard
	size     int    // slot capacity
	tenant   string // borrowing job's tenant
	consumed bool
}

// Broker implements cross-shard SSR pre-reservation: when a borrowing
// shard's phase is past threshold R with unmet quota, the broker checks
// idle unreserved slots out of sibling shards (the checkout shows as Busy
// on the owner, so the owner cannot double-book it) and hands them to the
// borrower as driver loans. Slots travel home when the borrowed task
// finishes, the phase's reservation deadline D expires, or the job ends.
//
// The broker runs in one of two modes. Synchronous (offline): every shard
// is stepped by one goroutine, so grants and record-keeping happen inline
// and releases are scheduled on the owner's engine at the global instant.
// Asynchronous (online): each shard has its own event loop; Borrow queues
// the request for the broker's worker goroutine, which grabs slots via the
// owner's Call and delivers the outcome through Driver.ResolveLoan on the
// borrower's loop. Record flips (Consume/Unconsume) never touch owner
// state, so no loop goroutine ever blocks on another loop.
type Broker struct {
	cfg   LendingConfig
	peers []Peer
	async bool

	mu     sync.Mutex
	lent   []int // per owner shard: slots currently checked out
	loans  map[dag.JobID][]*loanRec
	byID   map[driver.LoanID]*loanRec
	stats  LoanStats
	closed bool
	// tenantLent tracks slots currently checked out per borrowing
	// tenant; tenantGranted counts lifetime grants per tenant.
	tenantLent    map[string]int
	tenantGranted map[string]int64

	// Asynchronous mode: an unbounded op queue drained by one worker, so
	// loop goroutines never block enqueueing.
	ops    []func()
	signal chan struct{}
	done   chan struct{}
}

// NewBroker creates a synchronous (offline) broker over the given peers.
func NewBroker(peers []Peer, cfg LendingConfig) *Broker {
	return &Broker{
		cfg:           cfg.withDefaults(),
		peers:         peers,
		lent:          make([]int, len(peers)),
		loans:         make(map[dag.JobID][]*loanRec),
		byID:          make(map[driver.LoanID]*loanRec),
		tenantLent:    make(map[string]int),
		tenantGranted: make(map[string]int64),
	}
}

// NewAsyncBroker creates an asynchronous (online) broker over the given
// peers and starts its worker goroutine. Close must be called to stop it.
func NewAsyncBroker(peers []Peer, cfg LendingConfig) *Broker {
	b := NewBroker(peers, cfg)
	b.async = true
	b.signal = make(chan struct{}, 1)
	b.done = make(chan struct{})
	go b.worker()
	return b
}

// Close stops an asynchronous broker's worker after it drains queued work.
// Synchronous brokers need no Close. Pending releases are still delivered
// through peer Calls, which report stopped runners as errors the broker
// ignores.
func (b *Broker) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	if b.async {
		select {
		case b.signal <- struct{}{}:
		default:
		}
		<-b.done
	}
}

// Stats returns a snapshot of lifetime lending activity.
func (b *Broker) Stats() LoanStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Outstanding returns the number of slots currently checked out across the
// federation.
func (b *Broker) Outstanding() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, l := range b.lent {
		n += l
	}
	return n
}

// LentBy returns how many of shard i's slots are currently checked out.
func (b *Broker) LentBy(i int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lent[i]
}

// Lender returns shard home's driver-facing lending hook.
func (b *Broker) Lender(home int) driver.SlotLender {
	return &lenderView{b: b, home: home}
}

// BindDriver attaches shard i's driver after construction. The broker and
// the drivers reference each other, so callers build the broker first
// (handing each driver its Lender) and bind the drivers once they exist,
// before any job is submitted.
func (b *Broker) BindDriver(i int, d *driver.Driver) {
	b.peers[i].Driver = d
}

// enqueue appends an op to the asynchronous worker's queue.
func (b *Broker) enqueue(op func()) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.ops = append(b.ops, op)
	b.mu.Unlock()
	select {
	case b.signal <- struct{}{}:
	default:
	}
	return true
}

// worker drains the op queue until Close. Each pass swaps the whole queue
// out under one lock acquisition and runs the batch unlocked, so enqueuing
// loop goroutines contend once per batch rather than once per op, and the
// drained buffer is recycled for the next batch.
func (b *Broker) worker() {
	defer close(b.done)
	var batch []func()
	for {
		b.mu.Lock()
		if len(b.ops) > 0 {
			batch, b.ops = b.ops, batch[:0]
		} else if b.closed {
			b.mu.Unlock()
			return
		}
		b.mu.Unlock()
		if len(batch) > 0 {
			for i, op := range batch {
				op()
				batch[i] = nil
			}
			batch = batch[:0]
			continue
		}
		<-b.signal
	}
}

// allowance returns how many more slots shard o may lend right now.
func (b *Broker) allowance(o int) int {
	cap := int(b.cfg.MaxLendFraction * float64(b.peers[o].Cluster.NumSlots()))
	return cap - b.lent[o]
}

// grant checks out up to req.Want free slots from home's siblings, visiting
// them in the deterministic order home+1 .. home+K-1 (mod K), and records
// the loans. It returns the number granted. Asynchronous mode runs it on
// the worker goroutine only, so grants are serialized and the per-owner
// lending cap cannot be overshot.
func (b *Broker) grant(home int, req driver.LoanRequest) int {
	granted := 0
	k := len(b.peers)
	for off := 1; off < k && granted < req.Want; off++ {
		o := (home + off) % k
		b.mu.Lock()
		allow := b.allowance(o)
		b.mu.Unlock()
		if allow > req.Want-granted {
			allow = req.Want - granted
		}
		if allow <= 0 {
			continue
		}
		type grab struct {
			slot cluster.SlotID
			size int
		}
		var got []grab
		peer := b.peers[o]
		err := peer.Call(func() {
			for len(got) < allow {
				slot, ok := peer.Cluster.AcquireFree(req.MinSize)
				if !ok {
					break
				}
				got = append(got, grab{slot, peer.Cluster.Slot(slot).Size})
			}
		})
		if err != nil || len(got) == 0 {
			continue
		}
		b.mu.Lock()
		for _, g := range got {
			rec := &loanRec{
				id:     driver.LoanID{Shard: o, Slot: g.slot},
				job:    req.Job,
				phase:  req.Phase,
				home:   home,
				size:   g.size,
				tenant: req.Tenant,
			}
			b.loans[req.Job] = append(b.loans[req.Job], rec)
			b.byID[rec.id] = rec
			b.lent[o]++
			b.tenantLent[rec.tenant]++
			b.tenantGranted[rec.tenant]++
			b.stats.Granted++
		}
		b.mu.Unlock()
		granted += len(got)
	}
	return granted
}

// release sends one checked-out slot home: the slot is freed in the owner's
// engine context and the owner's scheduler poked to re-match waiting work.
// The caller must already have removed the loan record.
func (b *Broker) release(rec *loanRec, now sim.Time) {
	owner := rec.id.Shard
	peer := b.peers[owner]
	fn := func() {
		// The slot can be gone: a node failure on the owner marks leased
		// slots Failed, and recovery returns them straight to the pool.
		if s := peer.Cluster.Slot(rec.id.Slot); s != nil && s.State() == cluster.Busy {
			if err := peer.Cluster.Release(rec.id.Slot); err == nil {
				peer.Driver.Poke()
			}
		}
	}
	if b.async {
		b.enqueue(func() { _ = peer.Call(fn) })
		return
	}
	peer.At(now, fn)
}

// removeLocked deletes a loan record. Caller holds b.mu.
func (b *Broker) removeLocked(rec *loanRec) {
	delete(b.byID, rec.id)
	recs := b.loans[rec.job]
	for i, r := range recs {
		if r == rec {
			b.loans[rec.job] = append(recs[:i], recs[i+1:]...)
			break
		}
	}
	if len(b.loans[rec.job]) == 0 {
		delete(b.loans, rec.job)
	}
	b.lent[rec.id.Shard]--
	if b.tenantLent[rec.tenant]--; b.tenantLent[rec.tenant] <= 0 {
		delete(b.tenantLent, rec.tenant)
	}
}

// RecallNode returns every unconsumed loan checked out of the named node
// of shard owner — the lending half of a node drain: idle borrowed
// capacity goes home (and parks in the node's Draining state) before the
// notice window closes, instead of failing at the wire. Consumed loans are
// left with their borrowers; if the node goes down under them the release
// finds the slot Failed and skips it. It reports the number recalled.
func (b *Broker) RecallNode(owner, node int, now sim.Time) int {
	peer := b.peers[owner]
	b.mu.Lock()
	var out []*loanRec
	for _, rec := range b.byID { //maporder:ok records collected then sorted by slot below
		if rec.id.Shard != owner || rec.consumed {
			continue
		}
		if s := peer.Cluster.Slot(rec.id.Slot); s == nil || s.Node != node {
			continue
		}
		out = append(out, rec)
	}
	// byID iteration order is random; releases schedule engine events, so
	// sort by slot (unique per owner) to keep replays deterministic.
	sort.Slice(out, func(i, j int) bool { return out[i].id.Slot < out[j].id.Slot })
	for _, rec := range out {
		b.removeLocked(rec)
		b.stats.Returned++
	}
	b.mu.Unlock()
	for _, rec := range out {
		b.release(rec, now)
	}
	return len(out)
}

// BorrowedByTenant returns how many borrowed slots the named tenant
// currently holds across the federation.
func (b *Broker) BorrowedByTenant(tenant string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tenantLent[tenant]
}

// GrantedToTenant returns the lifetime count of loans granted to the
// named tenant.
func (b *Broker) GrantedToTenant(tenant string) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tenantGranted[tenant]
}

// lenderView adapts the broker to one borrowing shard's driver.
type lenderView struct {
	b    *Broker
	home int
}

var _ driver.SlotLender = (*lenderView)(nil)

// now returns the home shard's current virtual clock (the global instant
// of the event invoking the lender).
func (v *lenderView) now() sim.Time {
	if p := v.b.peers[v.home]; p.Now != nil {
		return p.Now()
	}
	return 0
}

// Borrow implements driver.SlotLender.
func (v *lenderView) Borrow(req driver.LoanRequest) (int, bool) {
	b := v.b
	b.mu.Lock()
	closed := b.closed
	if !closed {
		b.stats.Requests++
	}
	b.mu.Unlock()
	if closed {
		return 0, false
	}
	if !b.async {
		return b.grant(v.home, req), false
	}
	home := v.home
	ok := b.enqueue(func() {
		granted := b.grant(home, req)
		err := b.peers[home].Call(func() {
			b.peers[home].Driver.ResolveLoan(req.Job, req.Phase, granted)
		})
		if err != nil && granted > 0 {
			// The borrower's loop is gone; strand no slots.
			v.returnGrants(req.Job, req.Phase, -1)
		}
	})
	if !ok {
		return 0, false
	}
	return 0, true
}

// Consume implements driver.SlotLender.
func (v *lenderView) Consume(job dag.JobID, minSize int) (driver.LoanID, bool) {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, rec := range b.loans[job] {
		if !rec.consumed && rec.size >= minSize {
			rec.consumed = true
			b.stats.Consumed++
			return rec.id, true
		}
	}
	return driver.LoanID{}, false
}

// Unconsume implements driver.SlotLender.
func (v *lenderView) Unconsume(id driver.LoanID) {
	b := v.b
	b.mu.Lock()
	defer b.mu.Unlock()
	if rec := b.byID[id]; rec != nil && rec.consumed {
		rec.consumed = false
		b.stats.Consumed--
	}
}

// Finish implements driver.SlotLender.
func (v *lenderView) Finish(id driver.LoanID) {
	b := v.b
	b.mu.Lock()
	rec := b.byID[id]
	if rec != nil {
		b.removeLocked(rec)
		b.stats.Finished++
	}
	b.mu.Unlock()
	if rec != nil {
		b.release(rec, v.now())
	}
}

// Return implements driver.SlotLender.
func (v *lenderView) Return(job dag.JobID, phase int, max int) int {
	return v.returnGrants(job, phase, max)
}

// returnGrants releases up to max idle loans of the job (phase >= 0
// restricts; max < 0 means all) and reports the number returned.
func (v *lenderView) returnGrants(job dag.JobID, phase int, max int) int {
	b := v.b
	b.mu.Lock()
	var out []*loanRec
	for _, rec := range b.loans[job] {
		if max >= 0 && len(out) >= max {
			break
		}
		if rec.consumed || (phase >= 0 && rec.phase != phase) {
			continue
		}
		out = append(out, rec)
	}
	for _, rec := range out {
		b.removeLocked(rec)
		b.stats.Returned++
	}
	b.mu.Unlock()
	now := v.now()
	for _, rec := range out {
		b.release(rec, now)
	}
	return len(out)
}
