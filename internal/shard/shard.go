// Package shard federates K independent scheduler engines behind one
// submission API: the cluster is partitioned into K shards, each with its
// own sim engine, cluster and driver; a router places incoming jobs onto
// shards; and a lending broker implements cross-shard SSR pre-reservation
// (the Algorithm 1 n > m refinement generalized across partitions, in the
// spirit of Ueter et al.'s reservation-based federated scheduling).
//
// Offline, the federation steps all K engines on one goroutine in global
// virtual-time order, which keeps every run deterministic; the online
// service layer (internal/service) instead wraps each shard in its own
// realtime.Runner and uses the asynchronous broker. With K = 1 the
// federation degenerates to exactly one driver with no lender, so its
// output is bit-identical to an unsharded run.
package shard

import (
	"errors"
	"fmt"

	"ssr/internal/cluster"
	"ssr/internal/driver"
	"ssr/internal/obs"
	"ssr/internal/sim"
)

// Options configures a Federation.
type Options struct {
	// Shards is the number of partitions K. Default 1.
	Shards int
	// Nodes and SlotsPerNode size the whole federation; nodes are split
	// across shards as evenly as possible (shard i gets Nodes/K nodes,
	// plus one of the Nodes%K remainder when i < Nodes%K).
	Nodes        int
	SlotsPerNode int
	// Driver is the per-shard scheduler configuration. Queue, Lender,
	// OnEvent and Trace must be left nil (each shard gets its own queue;
	// the federation wires the lender and event fan-in) — except that
	// with Shards == 1, OnEvent and Trace pass through untouched so a
	// single-shard federation stays bit-identical to a plain driver.
	// Driver.Adaptive passes through to every shard as-is: a class's tail
	// is a property of the workload, not of the partition, so all shards
	// should share one estimate.Registry. Offline this stays deterministic
	// because a single goroutine steps every shard engine in turn.
	Driver driver.Options
	// Router places submitted jobs onto shards. Default HashRouter.
	Router Router
	// Lending parameterizes the cross-shard lending broker.
	Lending LendingConfig
	// OnEvent, when non-nil, receives every shard's scheduler events
	// tagged with the originating shard index. Like driver.Options.
	// OnEvent it runs synchronously inside simulation events.
	OnEvent func(shard int, ev driver.Event)
	// Audit, when non-nil, receives every shard's reservation-decision
	// events tagged with the shard index (driver.Options.AuditShard).
	// Set it here, not on Driver: the federation owns the shard tags.
	Audit *obs.Audit
	// Registry, when non-nil, gets one SchedMetrics family set per shard,
	// each labeled shard="i", so a single scrape reads the whole
	// federation.
	Registry *obs.Registry
}

// Shard is one partition: an engine, a cluster and a driver of its own.
type Shard struct {
	// Index is the shard's position in the federation.
	Index int
	// Eng, Cl and Drv are the shard's simulation engine, slot pool and
	// scheduler.
	Eng *sim.Engine
	Cl  *cluster.Cluster
	Drv *driver.Driver

	assigned int // cumulative jobs routed here
	pending  int // routed jobs not yet finished
}

// NodeSplit returns the per-shard node counts for total nodes over k
// shards: an even split with the remainder spread over the first shards.
func NodeSplit(nodes, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = nodes / k
		if i < nodes%k {
			out[i]++
		}
	}
	return out
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Shards == 0 {
		out.Shards = 1
	}
	if out.Router == nil {
		out.Router = HashRouter{}
	}
	out.Lending = out.Lending.withDefaults()
	return out
}

func (o *Options) validate() error {
	if o.Shards < 1 {
		return fmt.Errorf("shard: Shards %d must be >= 1", o.Shards)
	}
	if o.Nodes < o.Shards {
		return fmt.Errorf("shard: %d nodes cannot cover %d shards", o.Nodes, o.Shards)
	}
	if o.Driver.Queue != nil {
		return errors.New("shard: Driver.Queue must be nil (each shard builds its own)")
	}
	if o.Driver.Lender != nil {
		return errors.New("shard: Driver.Lender must be nil (the federation wires its broker)")
	}
	if o.Driver.Audit != nil || o.Driver.Metrics != nil {
		return errors.New("shard: use Options.Audit/Registry, not Driver.Audit/Metrics (the federation tags shards)")
	}
	if o.Shards > 1 {
		if o.Driver.OnEvent != nil {
			return errors.New("shard: use Options.OnEvent, not Driver.OnEvent, with multiple shards")
		}
		if o.Driver.Trace != nil {
			return errors.New("shard: Driver.Trace is only supported with Shards == 1")
		}
	}
	return nil
}
