package estimate

import "ssr/internal/obs"

// classMetrics holds one class's exported estimator series. The counters
// double as freshness sources: obs last-observation tracking stamps each
// update with a per-series ordinal, so scrapes can tell a live estimator
// from a stalled one without a second bookkeeping path.
type classMetrics struct {
	alpha        *obs.Gauge
	tmSec        *obs.Gauge
	ks           *obs.Gauge
	effP         *obs.Gauge
	holdEWMA     *obs.Gauge
	window       *obs.Gauge
	stable       *obs.Gauge
	tasksEWMA    *obs.Gauge
	observations *obs.Counter
	fits         *obs.Counter
	rejects      *obs.Counter
}

// exporter lazily registers ssr_estimator_* series per class.
type exporter struct {
	reg    *obs.Registry
	labels []obs.Label
}

// Export attaches an obs registry: every class present now and created
// later publishes its state as ssr_estimator_* families labeled
// {tenant, class} (plus any extra labels, e.g. a shard tag). Call before
// feeding observations; attaching is idempotent per registry.
func (r *Registry) Export(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.export = &exporter{reg: reg, labels: append([]obs.Label(nil), labels...)}
	for _, key := range r.order {
		cs := r.classes[key]
		cs.metrics = r.export.forClass(key)
		cs.publish()
	}
}

func (e *exporter) forClass(key classKey) *classMetrics {
	tenant := key.tenant
	if tenant == "" {
		tenant = "default"
	}
	ls := append(append([]obs.Label(nil), e.labels...),
		obs.Label{Key: "tenant", Value: tenant},
		obs.Label{Key: "class", Value: key.class})
	g := func(name, help string) *obs.Gauge { return e.reg.Gauge(name, help, ls...) }
	c := func(name, help string) *obs.Counter { return e.reg.Counter(name, help, ls...) }
	return &classMetrics{
		alpha:        g("ssr_estimator_alpha", "Last accepted Pareto tail index per class."),
		tmSec:        g("ssr_estimator_tm_seconds", "Last accepted Pareto scale (window minimum) per class."),
		ks:           g("ssr_estimator_ks", "Kolmogorov-Smirnov distance of the last accepted fit."),
		effP:         g("ssr_estimator_p", "Effective Eq. 3 isolation level (target plus controller offset)."),
		holdEWMA:     g("ssr_estimator_hold_ewma", "EWMA of deadline outcomes (1 = held through the barrier)."),
		window:       g("ssr_estimator_window", "Sliding-window fill (task duration samples)."),
		stable:       g("ssr_estimator_stable", "1 when consecutive accepted tail indices agree within StabilityEps."),
		tasksEWMA:    g("ssr_estimator_tasks_ewma", "EWMA of submitted phase parallelism per class."),
		observations: c("ssr_estimator_observations_total", "Task durations fed into the class's window."),
		fits:         c("ssr_estimator_fits_total", "Accepted Pareto re-fits."),
		rejects:      c("ssr_estimator_rejects_total", "Rejected Pareto re-fits (degenerate, KS, or alpha range)."),
	}
}

// publish pushes the class's current state to its exported series. The
// per-observation counter is incremented at its call site; everything
// else is gauge state refreshed after fits and outcomes.
func (cs *classState) publish() {
	m := cs.metrics
	if m == nil {
		return
	}
	m.alpha.Set(cs.alpha)
	m.tmSec.Set(cs.tmSec)
	m.ks.Set(cs.ks)
	m.effP.Set(cs.effP)
	m.holdEWMA.Set(cs.holdEWMA)
	m.window.Set(float64(cs.filled))
	if cs.stable {
		m.stable.Set(1)
	} else {
		m.stable.Set(0)
	}
	m.tasksEWMA.Set(cs.tasksEWMA)
	if f := float64(cs.fits); f > m.fits.Value() {
		m.fits.Add(f - m.fits.Value())
	}
	if rj := float64(cs.rejects); rj > m.rejects.Value() {
		m.rejects.Add(rj - m.rejects.Value())
	}
}
