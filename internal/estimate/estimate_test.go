package estimate

import (
	"math"
	"testing"
	"time"

	"ssr/internal/stats"
)

// feedPareto streams n Pareto(alpha, xm) task durations into class
// (tenant="") of r, returning the number of accepted fits it triggered.
func feedPareto(t *testing.T, r *Registry, class string, alpha, xm float64, n int, label string) int {
	t.Helper()
	rng := stats.Stream(7, label)
	dist := stats.Pareto{Alpha: alpha, Xm: xm}
	accepted := 0
	for i := 0; i < n; i++ {
		d := time.Duration(dist.Sample(rng) * float64(time.Second))
		if ad, ok := r.ObserveTask("", class, d); ok && ad.Accepted {
			accepted++
		}
	}
	return accepted
}

func TestConvergesToTrueTail(t *testing.T) {
	for _, alpha := range []float64{1.2, 1.6, 2.5} {
		r := New(Config{})
		feedPareto(t, r, "job", alpha, 2.0, 2000, "conv")
		k, ok := r.Knobs("", "job", 0.9)
		if !ok {
			t.Fatalf("alpha=%v: no accepted fit after 2000 samples", alpha)
		}
		if rel := math.Abs(k.Alpha-alpha) / alpha; rel > 0.15 {
			t.Errorf("alpha=%v: fitted %.3f, relative error %.2f > 0.15", alpha, k.Alpha, rel)
		}
		// The MLE scale is the window minimum; with a 256-sample window it
		// sits close above the true xm.
		if k.TmSec < 2.0 || k.TmSec > 2.0*1.5 {
			t.Errorf("alpha=%v: fitted tm %.3fs, want in [2.0, 3.0)", alpha, k.TmSec)
		}
		if k.P != 0.9 {
			t.Errorf("alpha=%v: P = %v before any outcomes, want the 0.9 target", alpha, k.P)
		}
	}
}

func TestRelearnsAfterDrift(t *testing.T) {
	r := New(Config{})
	feedPareto(t, r, "job", 2.5, 2.0, 1500, "pre")
	k, ok := r.Knobs("", "job", 0.9)
	if !ok || math.Abs(k.Alpha-2.5)/2.5 > 0.15 {
		t.Fatalf("pre-drift fit = %+v (ok=%v), want alpha near 2.5", k, ok)
	}
	// The tail shifts heavier mid-run; once the window flushes the old
	// samples the fit must follow.
	feedPareto(t, r, "job", 1.2, 2.0, 1500, "post")
	k, _ = r.Knobs("", "job", 0.9)
	if math.Abs(k.Alpha-1.2)/1.2 > 0.15 {
		t.Errorf("post-drift fitted alpha = %.3f, want near 1.2", k.Alpha)
	}
}

func TestKnobsUnavailableBeforeFirstFit(t *testing.T) {
	r := New(Config{})
	if _, ok := r.Knobs("", "job", 0.9); ok {
		t.Error("Knobs ok on a class with no observations")
	}
	// Below MinSamples nothing fits, however long we wait between refits.
	for i := 0; i < DefaultConfig().MinSamples-1; i++ {
		if _, ok := r.ObserveTask("", "job", time.Second); ok {
			t.Fatal("refit before MinSamples")
		}
	}
	if _, ok := r.Knobs("", "job", 0.9); ok {
		t.Error("Knobs ok below MinSamples")
	}
}

func TestControllerRaisesEffectivePOnMisses(t *testing.T) {
	r := New(Config{})
	for i := 0; i < 300; i++ {
		r.ObserveOutcome("", "job", 0.9, true)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot classes = %d, want 1", len(snap))
	}
	cs := snap[0]
	if cs.HoldEWMA > 0.05 {
		t.Errorf("holdEWMA = %.3f after all-expired outcomes, want near 0", cs.HoldEWMA)
	}
	if cs.EffectiveP != DefaultConfig().PMax {
		t.Errorf("effective P = %.4f after chronic misses, want saturated at PMax %.4f",
			cs.EffectiveP, DefaultConfig().PMax)
	}
	// Once deadlines hold again the offset bleeds back to the floor.
	for i := 0; i < 500; i++ {
		r.ObserveOutcome("", "job", 0.9, false)
	}
	cs = r.Snapshot()[0]
	if cs.EffectiveP != 0.9 {
		t.Errorf("effective P = %.4f after sustained holds, want back at the 0.9 target", cs.EffectiveP)
	}
	if cs.Armed != 800 || cs.Expired != 300 {
		t.Errorf("armed/expired = %d/%d, want 800/300", cs.Armed, cs.Expired)
	}
}

func TestCopyBudgetGatedOnStability(t *testing.T) {
	r := New(Config{})
	if b := r.CopyBudget("", "job", 10); b != 0 {
		t.Errorf("budget = %d with no fit, want 0", b)
	}
	// Two consecutive accepted fits of the same tail mark it stable.
	if fits := feedPareto(t, r, "job", 2.5, 2.0, 600, "stable"); fits < 2 {
		t.Fatalf("accepted fits = %d, want >= 2", fits)
	}
	snap := r.Snapshot()[0]
	if !snap.Stable {
		t.Fatalf("class not stable after %d fits of one tail", snap.Fits)
	}
	// alpha ~2.5 -> frac = 1/(alpha-0.5) ~ 0.5: budget is a fraction.
	if b := r.CopyBudget("", "job", 10); b < 4 || b > 7 {
		t.Errorf("budget = %d for 10 ongoing at alpha ~2.5, want ~5", b)
	}
	if b := r.CopyBudget("", "job", 0); b != 0 {
		t.Errorf("budget = %d with nothing ongoing, want 0", b)
	}

	// A heavy tail (alpha near 1) duplicates every ongoing task.
	heavy := New(Config{})
	feedPareto(t, heavy, "job", 1.2, 2.0, 600, "heavy")
	if !heavy.Snapshot()[0].Stable {
		t.Fatal("heavy-tail class not stable")
	}
	if b := heavy.CopyBudget("", "job", 10); b != 10 {
		t.Errorf("budget = %d for 10 ongoing at alpha ~1.2, want 10 (full duplication)", b)
	}
}

func TestPhaseEWMATracksParallelism(t *testing.T) {
	r := New(Config{})
	for i := 0; i < 50; i++ {
		r.ObservePhase("", "job", 16)
	}
	if ewma := r.Snapshot()[0].TasksEWMA; ewma != 16 {
		t.Errorf("tasks EWMA = %v after constant width 16, want 16", ewma)
	}
}

func TestSnapshotSortedByTenantClass(t *testing.T) {
	r := New(Config{})
	r.ObserveTask("t2", "b", time.Second)
	r.ObserveTask("t1", "z", time.Second)
	r.ObserveTask("t1", "a", time.Second)
	r.ObserveTask("", "m", time.Second)
	snap := r.Snapshot()
	var got []string
	for _, cs := range snap {
		got = append(got, cs.Tenant+"/"+cs.Class)
	}
	want := []string{"/m", "t1/a", "t1/z", "t2/b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", got, want)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct{ name, want string }{
		{"bg-17", "bg"},
		{"kmeans", "kmeans"},
		{"par-3", "par"},
		{"q12-7", "q12"},
		{"tpch-12-7", "tpch-12"},
		{"-5", "-5"},
		{"", "job"},
		{"run-", "run-"},
	}
	for _, c := range cases {
		if got := ClassOf(c.name); got != c.want {
			t.Errorf("ClassOf(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}
