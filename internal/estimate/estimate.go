// Package estimate closes the SSR control loop: streaming per-tenant,
// per-class estimators fed from the same task completions the decision
// audit records, producing the Eq. 3 knobs (Pareto tail index alpha, scale
// t_m, isolation level P) online instead of from static configuration.
//
// The package is the estimator stage of a sensor -> estimator -> actuator
// loop:
//
//   - sensor: the driver reports every finished task attempt
//     (ObserveTask), every submitted phase (ObservePhase) and every armed
//     deadline's outcome (ObserveOutcome).
//   - estimator: a sliding window per (tenant, class) is re-fit
//     periodically with the internal/stats Pareto MLE, accepted or
//     rejected by a Kolmogorov–Smirnov distance bound, and tracked for
//     tail-index stability across consecutive accepted fits. An EWMA of
//     observed deadline outcomes drives an integral controller on the
//     effective isolation level P.
//   - actuator: the driver re-derives the Eq. 3 deadline from Knobs and
//     caps straggler-mitigation copies with CopyBudget.
//
// Determinism: the registry advances only when its Observe* methods are
// called — all from inside engine events on the virtual clock, never from
// wall time — so an offline replay with an estimator attached is exactly
// reproducible, and a replay without one is bit-identical to a build
// without this package. The mutex only serializes online shard loops; an
// offline run is single-threaded through it.
package estimate

import (
	"sort"
	"strings"
	"sync"
	"time"

	"ssr/internal/stats"
)

// Config parameterizes the estimators. The zero value of any field is
// replaced by its default.
type Config struct {
	// Window is the per-class sliding-window size (task durations kept).
	Window int
	// MinSamples is the minimum window fill before the first fit.
	MinSamples int
	// RefitEvery re-fits a class after this many new observations.
	RefitEvery int
	// MaxKS is the Kolmogorov–Smirnov distance above which a fit is
	// rejected (the window does not look Pareto — e.g. mid-drift mixture).
	MaxKS float64
	// StabilityEps bounds the relative change between consecutive accepted
	// tail indices for the class to count as stable. Stability gates the
	// copy budget: speculative copies are only spent on a tail we trust.
	StabilityEps float64
	// AlphaMin and AlphaMax clamp acceptable fitted tail indices.
	// AlphaMin must stay above 1: Eq. 3 diverges as alpha -> 1 and the
	// Anselmi–Walton stability region for speculative copies requires a
	// finite mean.
	AlphaMin, AlphaMax float64
	// TaskEWMABeta weights the per-class task-count EWMA update.
	TaskEWMABeta float64
	// HoldEWMABeta weights the deadline-outcome (isolation) EWMA update.
	HoldEWMABeta float64
	// PGain is the integral gain of the effective-P controller: each
	// observed outcome nudges effective P by PGain*(target - holdEWMA),
	// clamped to [target, PMax].
	PGain float64
	// PMax caps the effective isolation level so Eq. 3 deadlines stay
	// finite even when the controller saturates.
	PMax float64
}

// DefaultConfig returns the default estimator parameters.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 256
	}
	if c.MinSamples == 0 {
		c.MinSamples = 64
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 32
	}
	if c.MaxKS == 0 {
		c.MaxKS = 0.15
	}
	if c.StabilityEps == 0 {
		c.StabilityEps = 0.2
	}
	if c.AlphaMin == 0 {
		c.AlphaMin = 1.05
	}
	if c.AlphaMax == 0 {
		c.AlphaMax = 8
	}
	if c.TaskEWMABeta == 0 {
		c.TaskEWMABeta = 0.2
	}
	if c.HoldEWMABeta == 0 {
		c.HoldEWMABeta = 0.05
	}
	if c.PGain == 0 {
		c.PGain = 0.05
	}
	if c.PMax == 0 {
		c.PMax = 0.995
	}
	return c
}

// Knobs are the estimator-derived Eq. 3 inputs for one class.
type Knobs struct {
	// Alpha is the last accepted Pareto tail index.
	Alpha float64
	// P is the effective isolation level (target plus controller offset).
	P float64
	// TmSec is the fitted Pareto scale (the window minimum), in seconds.
	// The deadline still uses the phase's own first-finisher t_m; the
	// fitted scale is exported for attribution and introspection.
	TmSec float64
}

// Adaptation records one re-fit: old -> new knob values, the window stats
// behind it, and why it was accepted or rejected. The driver turns each
// one into a typed audit event.
type Adaptation struct {
	Tenant string
	Class  string
	// Accepted reports whether the fit replaced the class's knobs.
	Accepted bool
	// Reason is "fit" for an accepted fit, else the rejection cause:
	// "degenerate", "ks" or "alpha_range".
	Reason string
	// KS is the Kolmogorov–Smirnov distance of the candidate fit.
	KS float64
	// Window is the number of samples behind the candidate fit.
	Window int

	OldAlpha, NewAlpha float64
	OldTmSec, NewTmSec float64
	OldP, NewP         float64
}

// Rejection reasons (Adaptation.Reason).
const (
	ReasonFit        = "fit"
	ReasonDegenerate = "degenerate"
	ReasonKS         = "ks"
	ReasonAlphaRange = "alpha_range"
)

type classKey struct {
	tenant, class string
}

// classState is the streaming estimator of one (tenant, class).
type classState struct {
	key classKey

	// win is a ring of the last Window task durations in seconds.
	win      []float64
	head     int
	filled   int
	observed uint64
	sinceFit int
	lastSec  float64

	// Last accepted fit.
	fitted    bool
	alpha     float64
	tmSec     float64
	ks        float64
	stable    bool
	fits      uint64
	rejects   uint64
	prevAlpha float64

	// Task-count EWMA over submitted phase parallelism.
	tasksEWMA float64
	haveTasks bool

	// Deadline-outcome controller state.
	targetP  float64
	effP     float64
	haveP    bool
	holdEWMA float64
	armed    uint64
	expired  uint64

	metrics *classMetrics
}

// Registry holds the estimators of every (tenant, class) seen. It is safe
// for concurrent use; offline runs drive it single-threaded so replays
// are exact.
type Registry struct {
	mu      sync.Mutex
	cfg     Config
	classes map[classKey]*classState
	order   []classKey
	scratch []float64
	export  *exporter
}

// New creates a registry with the given configuration (zero fields take
// defaults).
func New(cfg Config) *Registry {
	return &Registry{
		cfg:     cfg.withDefaults(),
		classes: make(map[classKey]*classState),
	}
}

// Config returns the effective (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

func (r *Registry) class(tenant, class string) *classState {
	key := classKey{tenant: tenant, class: class}
	cs := r.classes[key]
	if cs == nil {
		cs = &classState{key: key, win: make([]float64, r.cfg.Window)}
		r.classes[key] = cs
		r.order = append(r.order, key)
		if r.export != nil {
			cs.metrics = r.export.forClass(key)
		}
	}
	return cs
}

// ObserveTask feeds one completed task attempt's service time into the
// class's sliding window. Every RefitEvery observations (once MinSamples
// have accumulated) the window is re-fit; the returned Adaptation (ok
// true) describes that fit so the caller can audit it.
func (r *Registry) ObserveTask(tenant, class string, dur time.Duration) (Adaptation, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.class(tenant, class)
	sec := dur.Seconds()
	cs.win[cs.head] = sec
	cs.head = (cs.head + 1) % len(cs.win)
	if cs.filled < len(cs.win) {
		cs.filled++
	}
	cs.observed++
	cs.sinceFit++
	cs.lastSec = sec
	if cs.metrics != nil {
		cs.metrics.observations.Inc()
	}
	if cs.filled < r.cfg.MinSamples || cs.sinceFit < r.cfg.RefitEvery {
		return Adaptation{}, false
	}
	return r.refitLocked(cs), true
}

// refitLocked re-fits cs's window and applies the accept/reject rules.
func (r *Registry) refitLocked(cs *classState) Adaptation {
	cs.sinceFit = 0
	r.scratch = append(r.scratch[:0], cs.win[:cs.filled]...)
	ad := Adaptation{
		Tenant:   cs.key.tenant,
		Class:    cs.key.class,
		Window:   cs.filled,
		OldAlpha: cs.alpha,
		OldTmSec: cs.tmSec,
		OldP:     cs.effP,
	}
	fit, err := stats.FitPareto(r.scratch)
	reason := ""
	switch {
	case err != nil:
		reason = ReasonDegenerate
	default:
		ad.KS = stats.KSDistance(r.scratch, fit)
		switch {
		case ad.KS > r.cfg.MaxKS:
			reason = ReasonKS
		case fit.Alpha <= r.cfg.AlphaMin || fit.Alpha > r.cfg.AlphaMax:
			reason = ReasonAlphaRange
		}
	}
	if reason != "" {
		// Keep the previous knobs (stale beats garbage) but drop the
		// stability claim: the window stopped looking like the tail we
		// trusted, so the copy budget closes until fits agree again.
		cs.rejects++
		cs.stable = false
		ad.Accepted = false
		ad.Reason = reason
		ad.NewAlpha = cs.alpha
		ad.NewTmSec = cs.tmSec
		ad.NewP = cs.effP
		cs.publish()
		return ad
	}
	rel := 0.0
	if cs.fitted {
		rel = (fit.Alpha - cs.alpha) / cs.alpha
		if rel < 0 {
			rel = -rel
		}
	}
	cs.stable = cs.fitted && rel <= r.cfg.StabilityEps
	cs.prevAlpha = cs.alpha
	cs.alpha = fit.Alpha
	cs.tmSec = fit.Xm
	cs.ks = ad.KS
	cs.fitted = true
	cs.fits++
	ad.Accepted = true
	ad.Reason = ReasonFit
	ad.NewAlpha = cs.alpha
	ad.NewTmSec = cs.tmSec
	ad.NewP = cs.effP
	cs.publish()
	return ad
}

// ObservePhase feeds one submitted phase's degree of parallelism into the
// class's task-count EWMA.
func (r *Registry) ObservePhase(tenant, class string, parallelism int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.class(tenant, class)
	v := float64(parallelism)
	if !cs.haveTasks {
		cs.tasksEWMA = v
		cs.haveTasks = true
	} else {
		cs.tasksEWMA = r.cfg.TaskEWMABeta*v + (1-r.cfg.TaskEWMABeta)*cs.tasksEWMA
	}
	if cs.metrics != nil {
		cs.metrics.tasksEWMA.Set(cs.tasksEWMA)
	}
}

// ObserveOutcome feeds one armed deadline's outcome — expired before the
// barrier, or held through it — into the effective-P controller anchored
// at the class's configured isolation target.
func (r *Registry) ObserveOutcome(tenant, class string, targetP float64, expired bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.class(tenant, class)
	cs.anchor(targetP, r.cfg)
	cs.armed++
	held := 1.0
	if expired {
		held = 0
		cs.expired++
	}
	if cs.armed == 1 {
		cs.holdEWMA = held
	} else {
		cs.holdEWMA = r.cfg.HoldEWMABeta*held + (1-r.cfg.HoldEWMABeta)*cs.holdEWMA
	}
	// Integral action: chronic misses (holdEWMA below target) push the
	// effective P up, lengthening Eq. 3 deadlines; once observed isolation
	// meets the target the offset bleeds back toward the floor.
	cs.effP += r.cfg.PGain * (cs.targetP - cs.holdEWMA)
	if cs.effP < cs.targetP {
		cs.effP = cs.targetP
	}
	if cs.effP > r.cfg.PMax {
		cs.effP = r.cfg.PMax
	}
	cs.publish()
}

// anchor (re-)anchors the controller at the configured target. A changed
// target (operator reconfiguration) re-bases the floor but keeps the
// accumulated offset.
func (cs *classState) anchor(targetP float64, cfg Config) {
	if !cs.haveP {
		cs.targetP = targetP
		cs.effP = targetP
		cs.haveP = true
		return
	}
	if cs.targetP != targetP {
		cs.effP += targetP - cs.targetP
		cs.targetP = targetP
		if cs.effP < targetP {
			cs.effP = targetP
		}
		if cs.effP > cfg.PMax {
			cs.effP = cfg.PMax
		}
	}
}

// Knobs returns the estimator-derived Eq. 3 knobs for the class, anchored
// at the caller's configured isolation target. ok is false until the
// class has an accepted fit — the caller stays on static configuration.
func (r *Registry) Knobs(tenant, class string, targetP float64) (Knobs, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.class(tenant, class)
	if !cs.fitted {
		return Knobs{}, false
	}
	cs.anchor(targetP, r.cfg)
	return Knobs{Alpha: cs.alpha, P: cs.effP, TmSec: cs.tmSec}, true
}

// CopyBudget returns the maximum number of straggler-mitigation copies
// that may run concurrently for one phase of the class, given its current
// number of ongoing tasks. The budget is gated by the tail-index
// stability test: with no stable accepted fit it is 0 (don't spend slots
// duplicating against a tail we can't characterize — the Anselmi–Walton
// regime where speculation can destabilize). With a stable fit the budget
// scales with tail heaviness per Xu & Lau: a heavy tail (alpha near 1)
// duplicates everything, a light tail only a fraction.
func (r *Registry) CopyBudget(tenant, class string, ongoing int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.class(tenant, class)
	if !cs.fitted || !cs.stable || ongoing <= 0 {
		return 0
	}
	frac := 1 / (cs.alpha - 0.5)
	if frac >= 1 {
		return ongoing
	}
	budget := int(frac*float64(ongoing) + 0.999999)
	if budget < 1 {
		budget = 1
	}
	return budget
}

// ClassSnapshot is a point-in-time copy of one class's estimator state.
type ClassSnapshot struct {
	Tenant     string  `json:"tenant"`
	Class      string  `json:"class"`
	Observed   uint64  `json:"observed"`
	Window     int     `json:"window"`
	LastSec    float64 `json:"lastSec,omitempty"`
	Fitted     bool    `json:"fitted"`
	Alpha      float64 `json:"alpha,omitempty"`
	TmSec      float64 `json:"tmSec,omitempty"`
	KS         float64 `json:"ks,omitempty"`
	Stable     bool    `json:"stable"`
	Fits       uint64  `json:"fits"`
	Rejects    uint64  `json:"rejects"`
	TasksEWMA  float64 `json:"tasksEwma,omitempty"`
	TargetP    float64 `json:"targetP,omitempty"`
	EffectiveP float64 `json:"effectiveP,omitempty"`
	HoldEWMA   float64 `json:"holdEwma,omitempty"`
	Armed      uint64  `json:"deadlinesArmed"`
	Expired    uint64  `json:"deadlinesExpired"`
}

// Snapshot copies every class's state, sorted by (tenant, class) — a
// deterministic, JSON-friendly dump for /v1/estimators and CLI output.
func (r *Registry) Snapshot() []ClassSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := append([]classKey(nil), r.order...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tenant != keys[j].tenant {
			return keys[i].tenant < keys[j].tenant
		}
		return keys[i].class < keys[j].class
	})
	out := make([]ClassSnapshot, 0, len(keys))
	for _, key := range keys {
		cs := r.classes[key]
		out = append(out, ClassSnapshot{
			Tenant:     key.tenant,
			Class:      key.class,
			Observed:   cs.observed,
			Window:     cs.filled,
			LastSec:    cs.lastSec,
			Fitted:     cs.fitted,
			Alpha:      cs.alpha,
			TmSec:      cs.tmSec,
			KS:         cs.ks,
			Stable:     cs.stable,
			Fits:       cs.fits,
			Rejects:    cs.rejects,
			TasksEWMA:  cs.tasksEWMA,
			TargetP:    cs.targetP,
			EffectiveP: cs.effP,
			HoldEWMA:   cs.holdEWMA,
			Armed:      cs.armed,
			Expired:    cs.expired,
		})
	}
	return out
}

// ClassOf derives a workload class from a job name by stripping one
// trailing numeric instance suffix: "bg-17" -> "bg", "par-003" -> "par",
// while "kmeans" and "q7" are their own class. An empty name maps to
// "job".
func ClassOf(name string) string {
	if name == "" {
		return "job"
	}
	i := strings.LastIndexByte(name, '-')
	if i > 0 && i < len(name)-1 && allDigits(name[i+1:]) {
		return name[:i]
	}
	return name
}

func allDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}
