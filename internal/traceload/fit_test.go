package traceload

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"ssr/internal/stats"
)

// synthClass streams n synthetic jobs of one class into the fitter, with
// exponential inter-arrivals and the given duration distribution.
func synthClass(f *Fitter, class string, n, priority int, rate float64, dur stats.Distribution, multiPhaseFrac float64, seed int64) {
	arr := stats.Stream(seed, "fit-test-arr-"+class)
	body := stats.Stream(seed, "fit-test-body-"+class)
	var now time.Duration
	for i := 0; i < n; i++ {
		now += secDur(arr.ExpFloat64() / rate)
		tasks := 1 + body.Intn(4)
		rec := JobRecord{
			ID: int64(i + 1), Name: class, Class: class, Priority: priority,
			Submit:    now,
			Durations: [][]time.Duration{make([]time.Duration, tasks)},
			Copies:    [][]time.Duration{make([]time.Duration, tasks)},
		}
		for t := 0; t < tasks; t++ {
			d := clampTask(secDur(dur.Sample(body)))
			rec.Durations[0][t] = d
			rec.Copies[0][t] = d
		}
		if body.Float64() < multiPhaseFrac {
			rec.Durations = append(rec.Durations, []time.Duration{clampTask(secDur(dur.Sample(body)))})
			rec.Copies = append(rec.Copies, []time.Duration{time.Second})
		}
		f.Add(rec)
	}
}

func TestFitterRecoversClassModels(t *testing.T) {
	f := NewFitter()
	pareto, err := stats.NewPareto(2.2, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	synthClass(f, "batch", 2000, 1, 2.0, pareto, 0.3, 17)
	synthClass(f, "prod", 500, 10, 0.25, stats.Exponential{Rate: 0.5}, 1.0, 18)
	model, err := f.Fit()
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if len(model.Classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(model.Classes))
	}
	// Classes are sorted by name.
	if model.Classes[0].Class != "batch" || model.Classes[1].Class != "prod" {
		t.Fatalf("class order %q, %q", model.Classes[0].Class, model.Classes[1].Class)
	}
	batch, ok := model.Class("batch")
	if !ok {
		t.Fatal("batch class missing")
	}
	if batch.Jobs != 2000 || batch.Priority != 1 {
		t.Errorf("batch jobs=%d priority=%d, want 2000/1", batch.Jobs, batch.Priority)
	}
	if batch.IATKind != "exp" {
		t.Errorf("batch IAT fitted as %q, want exp", batch.IATKind)
	}
	if iat, isExp := batch.IAT.(stats.Exponential); isExp {
		if iat.Rate < 1.8 || iat.Rate > 2.2 {
			t.Errorf("batch IAT rate = %v, want ~2.0", iat.Rate)
		}
	}
	if batch.DurationKind != "pareto" {
		t.Errorf("batch durations fitted as %q, want pareto", batch.DurationKind)
	}
	if batch.MultiPhase < 0.25 || batch.MultiPhase > 0.35 {
		t.Errorf("batch multi-phase fraction = %v, want ~0.3", batch.MultiPhase)
	}
	prod, _ := model.Class("prod")
	if prod.Share < 0.15 || prod.Share > 0.25 {
		t.Errorf("prod share = %v, want ~0.2", prod.Share)
	}
	if prod.MultiPhase != 1.0 {
		t.Errorf("prod multi-phase = %v, want 1.0", prod.MultiPhase)
	}
	if prod.ReduceRatio <= 0 || prod.ReduceRatio > 1 {
		t.Errorf("prod reduce ratio = %v, want in (0, 1]", prod.ReduceRatio)
	}
	// The summary string should carry the fitted kinds.
	s := batch.String()
	if !strings.Contains(s, "iat=exp") || !strings.Contains(s, "dur=pareto") {
		t.Errorf("summary %q missing fitted kinds", s)
	}
}

func TestFitDistributionEmpiricalFallbacks(t *testing.T) {
	// Tiny samples skip parametric fitting entirely.
	_, kind, _, err := FitDistribution([]float64{1, 2, 3})
	if err != nil || kind != "empirical" {
		t.Errorf("tiny sample: kind=%q err=%v, want empirical", kind, err)
	}
	// A bimodal sample fits neither family well.
	var bimodal []float64
	for i := 0; i < 200; i++ {
		bimodal = append(bimodal, 1.0)
		bimodal = append(bimodal, 100.0)
	}
	_, kind, _, err = FitDistribution(bimodal)
	if err != nil || kind != "empirical" {
		t.Errorf("bimodal sample: kind=%q err=%v, want empirical", kind, err)
	}
	if _, _, _, err := FitDistribution(nil); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestFitPrefixLeavesSourcePositioned(t *testing.T) {
	var sb strings.Builder
	if err := WriteHeader(&sb); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rec := JobRecord{
			ID: int64(i + 1), Name: "j", Class: ClassBatch, Priority: 1,
			Submit:    time.Duration(i) * time.Second,
			Durations: [][]time.Duration{{time.Second}},
			Copies:    [][]time.Duration{{time.Second}},
		}
		if err := WriteRecord(&sb, rec); err != nil {
			t.Fatal(err)
		}
	}
	rd, err := NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := NewFitter()
	model, err := f.FitPrefix(rd, 3)
	if err != nil {
		t.Fatalf("fit prefix: %v", err)
	}
	if f.Jobs() != 3 {
		t.Errorf("fitter consumed %d jobs, want 3", f.Jobs())
	}
	if len(model.Classes) != 1 || model.Classes[0].Jobs != 3 {
		t.Errorf("model classes = %+v, want one batch class with 3 jobs", model.Classes)
	}
	// The remainder of the trace is still readable.
	rec, err := rd.Next()
	if err != nil {
		t.Fatalf("next after prefix: %v", err)
	}
	if rec.ID != 4 {
		t.Errorf("job after prefix = %d, want 4", rec.ID)
	}
}

func TestFitterSingleArrivalFallback(t *testing.T) {
	f := NewFitter()
	f.Add(JobRecord{
		ID: 1, Name: "only", Class: "rare", Priority: 5,
		Durations: [][]time.Duration{{time.Second, 2 * time.Second}},
		Copies:    [][]time.Duration{{time.Second, 2 * time.Second}},
	})
	model, err := f.Fit()
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	cm := model.Classes[0]
	if cm.IATKind != "exp" {
		t.Errorf("single-arrival IAT kind = %q, want exp fallback", cm.IATKind)
	}
	if exp, ok := cm.IAT.(stats.Exponential); !ok || exp.Rate != 1 {
		t.Errorf("single-arrival IAT = %v, want Exponential{Rate: 1}", cm.IAT)
	}
}

func TestFitEmptyFails(t *testing.T) {
	if _, err := NewFitter().Fit(); err == nil {
		t.Error("fitting an empty prefix should fail")
	}
}

func TestFitPrefixPropagatesParseErrors(t *testing.T) {
	trace := strings.Join(TraceHeader, ",") + "\n1.0,1,a,batch,1,0,0,bad,\n"
	rd, err := NewReader(strings.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFitter().FitPrefix(rd, 0); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("parse error not propagated: %v", err)
	}
}
