package traceload

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"ssr/internal/dag"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

// The generator synthesizes a cluster-trace-shaped CSV from the existing
// workload presets, so tests, CI and users can produce arbitrarily large
// traces without external downloads: "prod" jobs come from the SparkBench
// ML suite (workload.MLSuite), "batch" jobs follow the Google-trace batch
// statistics of workload.BackgroundConfig (heavy-tailed Pareto durations,
// small-job-dominated task counts). Rows stream straight to the writer —
// generating a 10M-job trace needs the same memory as a 100-job one.

// GenConfig parameterizes trace synthesis.
type GenConfig struct {
	// Jobs is the number of jobs to emit.
	Jobs int
	// RatePerSec is the aggregate mean arrival rate (Poisson).
	RatePerSec float64
	// BatchFraction is the fraction of jobs in the batch class.
	BatchFraction float64
	// Batch shapes the batch class (MeanTask, Alpha, MaxParallelism are
	// used; Jobs and Window are ignored — arrivals come from RatePerSec).
	Batch workload.BackgroundConfig
	// ProdPriority and BatchPriority are the per-class priorities.
	ProdPriority, BatchPriority int
	// ProdParallelism caps the ML suite's per-phase parallelism (the
	// presets default to 20; small test traces use less).
	ProdParallelism int
}

// DefaultGen mirrors the paper's cluster mix: batch-dominated arrivals
// with a thin stream of production ML jobs.
func DefaultGen() GenConfig {
	return GenConfig{
		Jobs:            1000,
		RatePerSec:      2,
		BatchFraction:   0.85,
		Batch:           workload.DefaultBackground(),
		ProdPriority:    10,
		BatchPriority:   1,
		ProdParallelism: 8,
	}
}

func (c GenConfig) validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("traceload: gen jobs %d must be positive", c.Jobs)
	}
	if c.RatePerSec <= 0 {
		return fmt.Errorf("traceload: gen rate %v must be positive", c.RatePerSec)
	}
	if c.BatchFraction < 0 || c.BatchFraction > 1 {
		return fmt.Errorf("traceload: gen batch fraction %v must be in [0, 1]", c.BatchFraction)
	}
	if c.Batch.Alpha <= 1 {
		return fmt.Errorf("traceload: gen batch alpha %v must exceed 1", c.Batch.Alpha)
	}
	if c.Batch.MeanTask <= 0 || c.Batch.MaxParallelism <= 0 {
		return fmt.Errorf("traceload: gen batch needs positive mean task and max parallelism")
	}
	if c.ProdParallelism <= 0 {
		return fmt.Errorf("traceload: gen prod parallelism %d must be positive", c.ProdParallelism)
	}
	return nil
}

// Generate streams a synthetic cluster trace to w: header plus one row per
// task, jobs sorted by arrival time. The trace is a pure function of
// (cfg, seed).
func Generate(w io.Writer, cfg GenConfig, seed int64) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if err := WriteHeader(bw); err != nil {
		return err
	}
	arrivals := stats.Stream(seed, "traceload-gen-arrivals")
	classPick := stats.Stream(seed, "traceload-gen-class")
	batchDist, err := stats.ParetoWithMean(cfg.Batch.Alpha, cfg.Batch.MeanTask.Seconds())
	if err != nil {
		return err
	}
	suite := workload.MLSuite()
	var now time.Duration
	prodCount := 0
	for i := 0; i < cfg.Jobs; i++ {
		now += time.Duration(arrivals.ExpFloat64() / cfg.RatePerSec * float64(time.Second))
		var rec JobRecord
		if classPick.Float64() < cfg.BatchFraction {
			rec = genBatch(cfg, seed, i, now, batchDist)
		} else {
			rec, err = genProd(cfg, seed, i, prodCount, now, suite)
			if err != nil {
				return err
			}
			prodCount++
		}
		if err := WriteRecord(bw, rec); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("traceload: flush trace: %w", err)
	}
	return nil
}

// genBatch synthesizes one batch job with the workload.Background shape
// statistics: ~90% small jobs (<= 10 tasks), 70% single-phase, Pareto
// durations.
func genBatch(cfg GenConfig, seed int64, index int, submit time.Duration, dist stats.Distribution) JobRecord {
	rng := stats.SubStream(seed, "traceload-gen-batch", index)
	tasks := 1 + rng.Intn(10)
	if rng.Float64() > 0.9 && cfg.Batch.MaxParallelism > 10 {
		tasks = 11 + rng.Intn(cfg.Batch.MaxParallelism-10)
	}
	phases := 1
	if rng.Float64() >= 0.7 {
		phases = 2
	}
	rec := JobRecord{
		ID:        int64(index + 1),
		Name:      fmt.Sprintf("batch-%d", index),
		Class:     ClassBatch,
		Priority:  cfg.BatchPriority,
		Submit:    submit,
		Durations: make([][]time.Duration, phases),
		Copies:    make([][]time.Duration, phases),
	}
	width := tasks
	for p := 0; p < phases; p++ {
		if p == 1 {
			width = tasks / 2
			if width < 1 {
				width = 1
			}
		}
		ds := make([]time.Duration, width)
		cs := make([]time.Duration, width)
		for t := range ds {
			ds[t] = clampTask(secDur(dist.Sample(rng)))
			cs[t] = clampTask(secDur(dist.Sample(rng)))
		}
		rec.Durations[p] = ds
		rec.Copies[p] = cs
	}
	return rec
}

// genProd synthesizes one production job from the rotating ML suite
// presets, capped at cfg.ProdParallelism per phase.
func genProd(cfg GenConfig, seed int64, index, prodIndex int, submit time.Duration, suite []workload.MLSpec) (JobRecord, error) {
	spec := suite[prodIndex%len(suite)]
	if spec.Parallelism > cfg.ProdParallelism {
		spec.Parallelism = cfg.ProdParallelism
	}
	job, err := spec.Build(dag.JobID(index+1), dag.Priority(cfg.ProdPriority), submit,
		stats.SubStream(seed, "traceload-gen-prod", index))
	if err != nil {
		return JobRecord{}, fmt.Errorf("traceload: gen prod job %d: %w", index, err)
	}
	rec := JobRecord{
		ID:        int64(index + 1),
		Name:      fmt.Sprintf("%s-%d", spec.Name, prodIndex),
		Class:     ClassProd,
		Priority:  cfg.ProdPriority,
		Submit:    submit,
		Durations: make([][]time.Duration, job.NumPhases()),
		Copies:    make([][]time.Duration, job.NumPhases()),
	}
	for _, ph := range job.Phases() {
		ds := make([]time.Duration, len(ph.Tasks))
		cs := make([]time.Duration, len(ph.Tasks))
		for t, task := range ph.Tasks {
			ds[t] = task.Duration
			cs[t] = task.CopyDuration
		}
		rec.Durations[ph.ID] = ds
		rec.Copies[ph.ID] = cs
	}
	return rec, nil
}
