package traceload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// ResultRecord is one completed (or terminally failed/refused/shed) job of
// a load run, as written by the streaming result writer.
type ResultRecord struct {
	Job        int64   `json:"job"`
	Name       string  `json:"name"`
	Class      string  `json:"class,omitempty"`
	Tenant     string  `json:"tenant,omitempty"`
	Phase      string  `json:"phase"`
	SubmitSec  float64 `json:"submitSec"`
	LatencySec float64 `json:"latencySec,omitempty"`
	State      string  `json:"state"`
}

// Result writer formats.
const (
	FormatCSV   = "csv"
	FormatJSONL = "jsonl"
)

// ResultWriter streams per-job completion records to a sink incrementally
// — buffered writes, periodic flushes, no accumulation — so a multi-hour
// run's results never live in memory. It is safe for concurrent use by the
// completion goroutines of a load generator.
type ResultWriter struct {
	mu         sync.Mutex
	w          *bufio.Writer
	format     string
	count      int
	flushEvery int
}

// NewResultWriter wraps a sink in a streaming result writer using the
// given format (FormatCSV or FormatJSONL). The CSV header is written
// immediately; records are flushed every flushEvery writes (<= 0 picks a
// default of 256).
func NewResultWriter(w io.Writer, format string, flushEvery int) (*ResultWriter, error) {
	if flushEvery <= 0 {
		flushEvery = 256
	}
	rw := &ResultWriter{w: bufio.NewWriter(w), format: format, flushEvery: flushEvery}
	switch format {
	case FormatCSV:
		if _, err := rw.w.WriteString("job,name,class,tenant,phase,submit_sec,latency_sec,state\n"); err != nil {
			return nil, fmt.Errorf("traceload: write results header: %w", err)
		}
	case FormatJSONL:
	default:
		return nil, fmt.Errorf("traceload: result format %q must be %s or %s", format, FormatCSV, FormatJSONL)
	}
	return rw, nil
}

// Write appends one record.
func (rw *ResultWriter) Write(rec ResultRecord) error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	var err error
	switch rw.format {
	case FormatCSV:
		_, err = fmt.Fprintf(rw.w, "%d,%s,%s,%s,%s,%s,%s,%s\n",
			rec.Job, rec.Name, rec.Class, rec.Tenant, rec.Phase,
			strconv.FormatFloat(rec.SubmitSec, 'f', 6, 64),
			strconv.FormatFloat(rec.LatencySec, 'f', 6, 64),
			rec.State)
	case FormatJSONL:
		var data []byte
		if data, err = json.Marshal(rec); err == nil {
			data = append(data, '\n')
			_, err = rw.w.Write(data)
		}
	}
	if err != nil {
		return fmt.Errorf("traceload: write result: %w", err)
	}
	rw.count++
	if rw.count%rw.flushEvery == 0 {
		if err := rw.w.Flush(); err != nil {
			return fmt.Errorf("traceload: flush results: %w", err)
		}
	}
	return nil
}

// Count returns the number of records written.
func (rw *ResultWriter) Count() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.count
}

// Flush drains the buffer to the sink.
func (rw *ResultWriter) Flush() error {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if err := rw.w.Flush(); err != nil {
		return fmt.Errorf("traceload: flush results: %w", err)
	}
	return nil
}
