package traceload

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"ssr/internal/stats"
)

// The fitter turns a trace prefix into a generative per-class model: an
// inter-arrival distribution (the open-loop arrival process) and a
// task-duration distribution, each chosen from {exponential, Pareto} by
// Kolmogorov–Smirnov distance with an empirical-quantile fallback when
// neither parametric family fits, plus empirical job-shape statistics
// (task counts, multi-phase fraction, reduce-side ratio). The FittedSource
// in arrivals.go then samples the model indefinitely — the step that turns
// a bounded trace into an unbounded open-loop workload.

// Fit selection thresholds.
const (
	// minFitSamples is the sample size below which fitting goes straight
	// to the empirical fallback: MLE shape estimates on a handful of
	// points are noise.
	minFitSamples = 8
	// maxKSAccept is the largest KS distance at which a parametric fit is
	// accepted over the empirical fallback.
	maxKSAccept = 0.15
	// maxFitSamples caps the per-class samples the fitter retains, so
	// fitting a prefix of an arbitrarily long trace stays bounded.
	maxFitSamples = 100_000
)

// FitDistribution picks the best-fitting distribution for a positive
// sample: the exponential and Pareto MLEs compete on KS distance, and the
// empirical-quantile distribution wins when the sample is tiny or neither
// parametric family gets close. It returns the distribution, the kind
// label ("exp", "pareto" or "empirical") and the KS distance of the
// winner.
func FitDistribution(samples []float64) (stats.Distribution, string, float64, error) {
	if len(samples) == 0 {
		return nil, "", 0, fmt.Errorf("traceload: nothing to fit (empty sample)")
	}
	empirical := func() (stats.Distribution, string, float64, error) {
		e, err := stats.NewEmpirical(samples)
		if err != nil {
			return nil, "", 0, fmt.Errorf("traceload: empirical fallback: %w", err)
		}
		return e, "empirical", 0, nil
	}
	if len(samples) < minFitSamples {
		return empirical()
	}
	bestKS := math.Inf(1)
	var best stats.Distribution
	var bestKind string
	if exp, err := stats.FitExponential(samples); err == nil {
		if d := stats.KSDistance(samples, exp); d < bestKS {
			bestKS, best, bestKind = d, exp, "exp"
		}
	}
	if par, err := stats.FitPareto(samples); err == nil {
		if d := stats.KSDistance(samples, par); d < bestKS {
			bestKS, best, bestKind = d, par, "pareto"
		}
	}
	if best == nil || bestKS > maxKSAccept {
		return empirical()
	}
	return best, bestKind, bestKS, nil
}

// ClassModel is the fitted generative model of one workload class.
type ClassModel struct {
	// Class is the workload class label.
	Class string
	// Jobs is the number of prefix jobs the model was fitted on.
	Jobs int
	// Share is the class's fraction of all prefix arrivals; the fitted
	// source uses per-class IAT processes, so Share is informational.
	Share float64
	// Priority is the rounded mean priority of the class's jobs.
	Priority int
	// IAT is the fitted inter-arrival distribution (seconds).
	IAT stats.Distribution
	// IATKind labels the IAT fit ("exp", "pareto", "empirical").
	IATKind string
	// Duration is the fitted task-duration distribution (seconds).
	Duration stats.Distribution
	// DurationKind labels the duration fit.
	DurationKind string
	// TaskCounts is the empirical first-phase parallelism distribution.
	TaskCounts stats.Empirical
	// MultiPhase is the fraction of jobs with a second (reduce) phase.
	MultiPhase float64
	// ReduceRatio is the mean reduce/map parallelism ratio of multi-phase
	// jobs (0 when none were observed).
	ReduceRatio float64
}

// String summarizes the model for notes and logs.
func (m ClassModel) String() string {
	return fmt.Sprintf("%s: %d jobs (%.0f%%), iat=%s [%v], dur=%s [%v], tasks p50=%.0f, multiphase=%.0f%%",
		m.Class, m.Jobs, 100*m.Share, m.IATKind, m.IAT, m.DurationKind, m.Duration,
		m.TaskCounts.Quantile(0.5), 100*m.MultiPhase)
}

// Model is the fitted trace model: one ClassModel per workload class,
// sorted by class name for deterministic iteration.
type Model struct {
	Classes []ClassModel
}

// Class returns the model for a class label.
func (m *Model) Class(name string) (ClassModel, bool) {
	for _, c := range m.Classes {
		if c.Class == name {
			return c, true
		}
	}
	return ClassModel{}, false
}

// classAcc accumulates one class's prefix statistics.
type classAcc struct {
	jobs        int
	prioSum     int
	lastSubmit  time.Duration
	gaps        []float64 // seconds between successive arrivals
	durations   []float64 // task durations, seconds
	taskCounts  []float64 // first-phase parallelism
	multiPhase  int
	reduceRatio float64 // summed reduce/map ratios of multi-phase jobs
}

// Fitter streams trace records into per-class accumulators and fits the
// model on demand. Retained samples are capped (maxFitSamples per series)
// so memory stays bounded however long the prefix.
type Fitter struct {
	classes map[string]*classAcc
	order   []string // first-appearance order, for stable reporting
	jobs    int
}

// NewFitter returns an empty fitter.
func NewFitter() *Fitter {
	return &Fitter{classes: make(map[string]*classAcc)}
}

// Jobs returns the number of records consumed so far.
func (f *Fitter) Jobs() int { return f.jobs }

// Add folds one trace record into the per-class accumulators.
func (f *Fitter) Add(rec JobRecord) {
	acc := f.classes[rec.Class]
	if acc == nil {
		acc = &classAcc{}
		f.classes[rec.Class] = acc
		f.order = append(f.order, rec.Class)
	}
	if acc.jobs > 0 {
		gap := (rec.Submit - acc.lastSubmit).Seconds()
		if gap >= 0 && len(acc.gaps) < maxFitSamples {
			// Zero gaps (batch submissions) carry no rate information for
			// a continuous IAT model; nudge to a microsecond.
			if gap == 0 {
				gap = 1e-6
			}
			acc.gaps = append(acc.gaps, gap)
		}
	}
	acc.lastSubmit = rec.Submit
	acc.jobs++
	acc.prioSum += rec.Priority
	for _, ph := range rec.Durations {
		for _, d := range ph {
			if len(acc.durations) < maxFitSamples {
				acc.durations = append(acc.durations, d.Seconds())
			}
		}
	}
	if len(rec.Durations) > 0 && len(acc.taskCounts) < maxFitSamples {
		acc.taskCounts = append(acc.taskCounts, float64(len(rec.Durations[0])))
	}
	if len(rec.Durations) > 1 {
		acc.multiPhase++
		acc.reduceRatio += float64(len(rec.Durations[1])) / float64(len(rec.Durations[0]))
	}
	f.jobs++
}

// FitPrefix streams up to maxJobs records (0 = all) from a source into the
// fitter and returns the fitted model. The source is left positioned after
// the prefix, so a caller can keep replaying the remainder.
func (f *Fitter) FitPrefix(src Source, maxJobs int) (*Model, error) {
	for maxJobs <= 0 || f.jobs < maxJobs {
		rec, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, err
		}
		f.Add(rec)
	}
	return f.Fit()
}

// Fit builds the model from everything accumulated so far.
func (f *Fitter) Fit() (*Model, error) {
	if f.jobs == 0 {
		return nil, fmt.Errorf("traceload: cannot fit an empty trace prefix")
	}
	m := &Model{}
	names := append([]string(nil), f.order...)
	sort.Strings(names)
	for _, name := range names {
		acc := f.classes[name]
		cm := ClassModel{
			Class:    name,
			Jobs:     acc.jobs,
			Share:    float64(acc.jobs) / float64(f.jobs),
			Priority: int(math.Round(float64(acc.prioSum) / float64(acc.jobs))),
		}
		if len(acc.gaps) == 0 {
			// A single arrival carries no rate information; fall back to
			// one arrival per trace-second so the class still generates.
			cm.IAT, cm.IATKind = stats.Exponential{Rate: 1}, "exp"
		} else {
			dist, kind, _, err := FitDistribution(acc.gaps)
			if err != nil {
				return nil, fmt.Errorf("traceload: class %s iat: %w", name, err)
			}
			cm.IAT, cm.IATKind = dist, kind
		}
		dist, kind, _, err := FitDistribution(acc.durations)
		if err != nil {
			return nil, fmt.Errorf("traceload: class %s durations: %w", name, err)
		}
		cm.Duration, cm.DurationKind = dist, kind
		counts, err := stats.NewEmpirical(acc.taskCounts)
		if err != nil {
			return nil, fmt.Errorf("traceload: class %s task counts: %w", name, err)
		}
		cm.TaskCounts = counts
		cm.MultiPhase = float64(acc.multiPhase) / float64(acc.jobs)
		if acc.multiPhase > 0 {
			cm.ReduceRatio = acc.reduceRatio / float64(acc.multiPhase)
		}
		m.Classes = append(m.Classes, cm)
	}
	return m, nil
}
