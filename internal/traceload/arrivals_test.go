package traceload

import (
	"errors"
	"io"
	"reflect"
	"testing"
	"time"

	"ssr/internal/stats"
)

// sliceSource serves canned records, for arrival-source tests.
type sliceSource struct {
	recs []JobRecord
	i    int
}

func (s *sliceSource) Next() (JobRecord, error) {
	if s.i >= len(s.recs) {
		return JobRecord{}, io.EOF
	}
	rec := s.recs[s.i]
	s.i++
	return rec, nil
}

func simpleRec(id int64, submit time.Duration) JobRecord {
	return JobRecord{
		ID: id, Name: "j", Class: ClassBatch, Priority: 1, Submit: submit,
		Durations: [][]time.Duration{{time.Second}},
		Copies:    [][]time.Duration{{time.Second}},
	}
}

func TestReplayRebasesAndCompresses(t *testing.T) {
	src := &sliceSource{recs: []JobRecord{
		simpleRec(1, 10*time.Second),
		simpleRec(2, 12*time.Second),
		simpleRec(3, 16*time.Second),
	}}
	rs, err := Replay(src, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, time.Second, 3 * time.Second}
	for i, w := range want {
		a, err := rs.Next()
		if err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if a.At != w {
			t.Errorf("arrival %d at %v, want %v", i, a.At, w)
		}
		if a.Rec.ID != int64(i+1) {
			t.Errorf("arrival %d job %d, want %d", i, a.Rec.ID, i+1)
		}
	}
	if _, err := rs.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted replay = %v, want io.EOF", err)
	}
	if _, err := Replay(src, 0); err == nil {
		t.Error("zero speedup should fail")
	}
}

func TestPoissonRetimes(t *testing.T) {
	src := &sliceSource{recs: []JobRecord{
		simpleRec(1, time.Hour), simpleRec(2, 2*time.Hour), simpleRec(3, 3*time.Hour),
	}}
	ps, err := Poisson(src, 100, stats.Stream(3, "poisson-test"))
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i := 0; i < 3; i++ {
		a, err := ps.Next()
		if err != nil {
			t.Fatalf("arrival %d: %v", i, err)
		}
		if a.At < prev {
			t.Errorf("arrival %d at %v before %v (non-monotonic)", i, a.At, prev)
		}
		// Recorded timestamps are ignored: at rate 100/s three arrivals
		// land in well under an hour.
		if a.At >= time.Hour {
			t.Errorf("arrival %d at %v still on the trace clock", i, a.At)
		}
		prev = a.At
	}
	if _, err := ps.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("exhausted poisson = %v, want io.EOF", err)
	}
	if _, err := Poisson(src, 0, stats.Stream(3, "poisson-test")); err == nil {
		t.Error("zero rate should fail")
	}
}

// fittedModel builds a small two-class model for source tests.
func fittedModel(t *testing.T) *Model {
	t.Helper()
	counts, err := stats.NewEmpirical([]float64{1, 2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	return &Model{Classes: []ClassModel{
		{
			Class: ClassBatch, Jobs: 80, Share: 0.8, Priority: 1,
			IAT: stats.Exponential{Rate: 4}, IATKind: "exp",
			Duration: stats.Exponential{Rate: 0.5}, DurationKind: "exp",
			TaskCounts: counts, MultiPhase: 0.3, ReduceRatio: 0.5,
		},
		{
			Class: ClassProd, Jobs: 20, Share: 0.2, Priority: 10,
			IAT: stats.Exponential{Rate: 1}, IATKind: "exp",
			Duration: stats.Exponential{Rate: 1}, DurationKind: "exp",
			TaskCounts: counts, MultiPhase: 1, ReduceRatio: 0.25,
		},
	}}
}

func TestFittedDeterministicAndBounded(t *testing.T) {
	model := fittedModel(t)
	const n = 500
	draw := func() []Arrival {
		fs, err := Fitted(model, 99, n)
		if err != nil {
			t.Fatal(err)
		}
		var out []Arrival
		for {
			a, err := fs.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, a)
		}
		return out
	}
	first, second := draw(), draw()
	if len(first) != n {
		t.Fatalf("fitted source emitted %d jobs, want exactly %d", len(first), n)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("two fitted runs with the same seed diverge")
	}
	var prev time.Duration
	classes := map[string]int{}
	for i, a := range first {
		if a.At < prev {
			t.Fatalf("arrival %d at %v before %v (merge not time-ordered)", i, a.At, prev)
		}
		prev = a.At
		classes[a.Rec.Class]++
		if a.Rec.ID != int64(i+1) {
			t.Errorf("arrival %d id %d, want %d", i, a.Rec.ID, i+1)
		}
		if a.Rec.Tasks() < 1 {
			t.Errorf("arrival %d has no tasks", i)
		}
		if a.Rec.Class == ClassProd && len(a.Rec.Durations) != 2 {
			t.Errorf("prod job %d has %d phases, want 2 (MultiPhase=1)", i, len(a.Rec.Durations))
		}
	}
	// The batch class arrives 4x as often; both classes must show up.
	if classes[ClassBatch] < classes[ClassProd] {
		t.Errorf("class mix %v does not reflect rates", classes)
	}
	if classes[ClassProd] == 0 {
		t.Error("prod class never generated")
	}

	// A different seed produces a different sequence.
	fs, err := Fitted(model, 100, n)
	if err != nil {
		t.Fatal(err)
	}
	a0, err := fs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a0, first[0]) {
		t.Error("different seeds produced identical first arrivals")
	}

	if _, err := Fitted(nil, 1, 1); err == nil {
		t.Error("nil model should fail")
	}
	if _, err := Fitted(&Model{}, 1, 1); err == nil {
		t.Error("empty model should fail")
	}
}

func TestFittedJobDurationsClamped(t *testing.T) {
	model := fittedModel(t)
	fs, err := Fitted(model, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	for {
		a, err := fs.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for p, ph := range a.Rec.Durations {
			for i, d := range ph {
				if d < time.Millisecond {
					t.Fatalf("job %d phase %d task %d duration %v under the 1ms floor", a.Rec.ID, p, i, d)
				}
				if a.Rec.Copies[p][i] < time.Millisecond {
					t.Fatalf("job %d phase %d task %d copy under the 1ms floor", a.Rec.ID, p, i)
				}
			}
		}
	}
}
