package traceload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// The cluster trace format is one CSV row per task, modeled on the task
// event tables of the Google cluster traces:
//
//	time_sec,job,name,class,priority,phase,task,duration_sec,copy_sec
//
// where time_sec is the job's submission timestamp (every row of a job
// carries the same value), phase is the 0-based pipeline stage (phase p
// depends on phase p-1), task indexes tasks within the phase, duration_sec
// is the task runtime and copy_sec an optional speculative-copy runtime
// (empty means "same as duration"). Rows of one job must be contiguous,
// phases in order, and jobs sorted by nondecreasing time_sec — the natural
// order of an event trace, and what lets the Reader hold exactly one job's
// rows at a time no matter how long the trace is.

// TraceHeader is the expected header row of a cluster trace CSV.
var TraceHeader = []string{
	"time_sec", "job", "name", "class", "priority",
	"phase", "task", "duration_sec", "copy_sec",
}

// Source is a streaming iterator over trace jobs. Next returns io.EOF
// after the final record.
type Source interface {
	Next() (JobRecord, error)
}

// Reader streams JobRecords out of a cluster trace CSV with bounded
// memory: it scans rows with bufio and buffers only the rows of the job
// currently being assembled.
type Reader struct {
	sc      *bufio.Scanner
	line    int
	pending *partial // job being accumulated
	done    bool
	err     error

	maxBuffered int // high-water mark of rows buffered for one job
}

// partial is the single in-flight job the Reader is assembling.
type partial struct {
	rec  JobRecord
	rows int
}

// NewReader wraps a trace stream, reading and validating the header row.
func NewReader(r io.Reader) (*Reader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	rd := &Reader{sc: sc}
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("traceload: read trace header: %w", err)
		}
		return nil, fmt.Errorf("traceload: trace is empty (no header)")
	}
	rd.line = 1
	fields := strings.Split(sc.Text(), ",")
	if len(fields) != len(TraceHeader) {
		return nil, fmt.Errorf("traceload: line 1: header has %d columns, want %d", len(fields), len(TraceHeader))
	}
	for i, want := range TraceHeader {
		if strings.TrimSpace(fields[i]) != want {
			return nil, fmt.Errorf("traceload: line 1: header column %d is %q, want %q", i, fields[i], want)
		}
	}
	return rd, nil
}

// Line returns the last line number read (1-based; the header is line 1).
func (r *Reader) Line() int { return r.line }

// MaxBufferedRows returns the high-water mark of task rows held in memory
// at once — the bounded-memory guarantee made testable: it is bounded by
// the largest single job, never by the trace length.
func (r *Reader) MaxBufferedRows() int { return r.maxBuffered }

// Next returns the next job of the trace, or io.EOF after the last.
func (r *Reader) Next() (JobRecord, error) {
	if r.err != nil {
		return JobRecord{}, r.err
	}
	for !r.done {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				r.err = fmt.Errorf("traceload: line %d: read trace: %w", r.line+1, err)
				return JobRecord{}, r.err
			}
			r.done = true
			break
		}
		r.line++
		text := strings.TrimSpace(r.sc.Text())
		if text == "" {
			continue
		}
		row, err := parseRow(text, r.line)
		if err != nil {
			r.err = err
			return JobRecord{}, err
		}
		finished, err := r.accumulate(row)
		if err != nil {
			r.err = err
			return JobRecord{}, err
		}
		if finished != nil {
			return *finished, nil
		}
	}
	// Source exhausted: flush the final job, then report EOF.
	if r.pending != nil {
		rec, err := r.finish()
		if err != nil {
			r.err = err
			return JobRecord{}, err
		}
		return rec, nil
	}
	r.err = io.EOF
	return JobRecord{}, io.EOF
}

// taskRow is one parsed trace row.
type taskRow struct {
	line     int
	submit   time.Duration
	job      int64
	name     string
	class    string
	priority int
	phase    int
	task     int
	duration time.Duration
	copy     time.Duration // 0 = default to duration
}

// parseRow validates one data row, reporting the line number in every
// error.
func parseRow(text string, line int) (taskRow, error) {
	fields := strings.Split(text, ",")
	if len(fields) != len(TraceHeader) {
		return taskRow{}, fmt.Errorf("traceload: line %d: %d columns, want %d", line, len(fields), len(TraceHeader))
	}
	row := taskRow{line: line}
	sec, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
	if err != nil || sec < 0 {
		return taskRow{}, fmt.Errorf("traceload: line %d: time_sec %q invalid", line, fields[0])
	}
	row.submit = time.Duration(sec * float64(time.Second))
	row.job, err = strconv.ParseInt(strings.TrimSpace(fields[1]), 10, 64)
	if err != nil {
		return taskRow{}, fmt.Errorf("traceload: line %d: job id %q: %w", line, fields[1], err)
	}
	row.name = strings.TrimSpace(fields[2])
	row.class = strings.TrimSpace(fields[3])
	if row.class == "" {
		return taskRow{}, fmt.Errorf("traceload: line %d: empty class", line)
	}
	row.priority, err = strconv.Atoi(strings.TrimSpace(fields[4]))
	if err != nil {
		return taskRow{}, fmt.Errorf("traceload: line %d: priority %q: %w", line, fields[4], err)
	}
	row.phase, err = strconv.Atoi(strings.TrimSpace(fields[5]))
	if err != nil || row.phase < 0 {
		return taskRow{}, fmt.Errorf("traceload: line %d: phase %q invalid", line, fields[5])
	}
	row.task, err = strconv.Atoi(strings.TrimSpace(fields[6]))
	if err != nil || row.task < 0 {
		return taskRow{}, fmt.Errorf("traceload: line %d: task %q invalid", line, fields[6])
	}
	durSec, err := strconv.ParseFloat(strings.TrimSpace(fields[7]), 64)
	if err != nil || durSec <= 0 {
		return taskRow{}, fmt.Errorf("traceload: line %d: duration_sec %q invalid (must be positive)", line, fields[7])
	}
	row.duration = time.Duration(durSec * float64(time.Second))
	if s := strings.TrimSpace(fields[8]); s != "" {
		copySec, err := strconv.ParseFloat(s, 64)
		if err != nil || copySec <= 0 {
			return taskRow{}, fmt.Errorf("traceload: line %d: copy_sec %q invalid (must be positive)", line, fields[8])
		}
		row.copy = time.Duration(copySec * float64(time.Second))
	}
	return row, nil
}

// accumulate folds a row into the pending job. When the row opens a new
// job, the finished previous record is returned.
func (r *Reader) accumulate(row taskRow) (*JobRecord, error) {
	var finished *JobRecord
	if r.pending != nil && row.job != r.pending.rec.ID {
		rec, err := r.finish()
		if err != nil {
			return nil, err
		}
		if row.submit < rec.Submit {
			return nil, fmt.Errorf("traceload: line %d: job %d at %v arrives before predecessor %d at %v (trace must be time-sorted)",
				row.line, row.job, row.submit, rec.ID, rec.Submit)
		}
		finished = &rec
	}
	if r.pending == nil || finished != nil {
		r.pending = &partial{rec: JobRecord{
			ID:       row.job,
			Name:     row.name,
			Class:    row.class,
			Priority: row.priority,
			Submit:   row.submit,
		}}
	}
	p := r.pending
	if row.submit != p.rec.Submit || row.name != p.rec.Name || row.class != p.rec.Class || row.priority != p.rec.Priority {
		return nil, fmt.Errorf("traceload: line %d: job %d row disagrees with its first row (time/name/class/priority must match; interleaved jobs?)",
			row.line, row.job)
	}
	switch {
	case row.phase == len(p.rec.Durations):
		p.rec.Durations = append(p.rec.Durations, nil)
		p.rec.Copies = append(p.rec.Copies, nil)
	case row.phase == len(p.rec.Durations)-1:
		// continuing the current phase
	default:
		return nil, fmt.Errorf("traceload: line %d: job %d phase %d out of order (phases must be contiguous from 0)",
			row.line, row.job, row.phase)
	}
	ph := row.phase
	if row.task != len(p.rec.Durations[ph]) {
		return nil, fmt.Errorf("traceload: line %d: job %d phase %d task %d out of order (tasks must be contiguous from 0)",
			row.line, row.job, ph, row.task)
	}
	p.rec.Durations[ph] = append(p.rec.Durations[ph], row.duration)
	copyDur := row.copy
	if copyDur == 0 {
		copyDur = row.duration
	}
	p.rec.Copies[ph] = append(p.rec.Copies[ph], copyDur)
	p.rows++
	if p.rows > r.maxBuffered {
		r.maxBuffered = p.rows
	}
	return finished, nil
}

// finish seals the pending record.
func (r *Reader) finish() (JobRecord, error) {
	rec := r.pending.rec
	r.pending = nil
	for ph, durs := range rec.Durations {
		if len(durs) == 0 {
			return JobRecord{}, fmt.Errorf("traceload: line %d: job %d phase %d has no tasks", r.line, rec.ID, ph)
		}
	}
	return rec, nil
}

// WriteRecord emits one job in the cluster trace format (rows appended to
// w, no header). The generator and round-trip tests share it.
func WriteRecord(w io.Writer, rec JobRecord) error {
	sec := strconv.FormatFloat(rec.Submit.Seconds(), 'f', 6, 64)
	for ph, durs := range rec.Durations {
		for t, d := range durs {
			copyField := ""
			if ph < len(rec.Copies) && rec.Copies[ph] != nil && rec.Copies[ph][t] != d {
				copyField = strconv.FormatFloat(rec.Copies[ph][t].Seconds(), 'f', 6, 64)
			}
			_, err := fmt.Fprintf(w, "%s,%d,%s,%s,%d,%d,%d,%s,%s\n",
				sec, rec.ID, rec.Name, rec.Class, rec.Priority, ph, t,
				strconv.FormatFloat(d.Seconds(), 'f', 6, 64), copyField)
			if err != nil {
				return fmt.Errorf("traceload: write record: %w", err)
			}
		}
	}
	return nil
}

// WriteHeader emits the trace header row.
func WriteHeader(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(TraceHeader, ",")+"\n"); err != nil {
		return fmt.Errorf("traceload: write header: %w", err)
	}
	return nil
}
