package traceload

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestResultWriterCSV(t *testing.T) {
	var sb strings.Builder
	rw, err := NewResultWriter(&sb, FormatCSV, 2)
	if err != nil {
		t.Fatal(err)
	}
	recs := []ResultRecord{
		{Job: 1, Name: "a", Class: "batch", Tenant: "bulk", Phase: "warmup", SubmitSec: 0.5, LatencySec: 1.25, State: "completed"},
		{Job: 2, Name: "b", Class: "prod", Tenant: "ml", Phase: "measure", SubmitSec: 2, LatencySec: 0.75, State: "completed"},
		{Job: 3, Name: "c", Class: "batch", Tenant: "bulk", Phase: "measure", SubmitSec: 3, State: "shed"},
	}
	for _, r := range recs {
		if err := rw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if rw.Count() != 3 {
		t.Errorf("count = %d, want 3", rw.Count())
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3", len(lines))
	}
	if lines[0] != "job,name,class,tenant,phase,submit_sec,latency_sec,state" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,a,batch,bulk,warmup,0.500000,1.250000,completed") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[3], "shed") {
		t.Errorf("row 3 = %q", lines[3])
	}
}

func TestResultWriterJSONL(t *testing.T) {
	var sb strings.Builder
	rw, err := NewResultWriter(&sb, FormatJSONL, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := ResultRecord{Job: 42, Name: "j", Class: "prod", Tenant: "ml", Phase: "measure", SubmitSec: 1.5, LatencySec: 2.5, State: "completed"}
	if err := rw.Write(want); err != nil {
		t.Fatal(err)
	}
	if err := rw.Flush(); err != nil {
		t.Fatal(err)
	}
	var got ResultRecord
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &got); err != nil {
		t.Fatalf("jsonl row does not parse: %v", err)
	}
	if got != want {
		t.Errorf("round trip: got %+v, want %+v", got, want)
	}
}

func TestResultWriterPeriodicFlush(t *testing.T) {
	var sb strings.Builder
	rw, err := NewResultWriter(&sb, FormatJSONL, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Write(ResultRecord{Job: 1, Phase: "measure", State: "completed"}); err != nil {
		t.Fatal(err)
	}
	if err := rw.Write(ResultRecord{Job: 2, Phase: "measure", State: "completed"}); err != nil {
		t.Fatal(err)
	}
	// flushEvery=2: both rows must already be in the sink without an
	// explicit Flush.
	if n := strings.Count(sb.String(), "\n"); n != 2 {
		t.Errorf("sink has %d rows before explicit flush, want 2", n)
	}
}

func TestResultWriterBadFormat(t *testing.T) {
	if _, err := NewResultWriter(&strings.Builder{}, "xml", 0); err == nil {
		t.Error("unknown format accepted")
	}
}
