// Package traceload is the trace-replay front end: it streams
// cluster-trace-shaped CSVs through the scheduler without ever
// materializing a whole trace in memory, fits inter-arrival and
// task-duration distributions per workload class from a trace prefix, and
// generates open-loop arrivals either by replaying recorded timestamps (at
// a configurable speedup) or by sampling the fitted model — which is how a
// thousand-row sample trace can drive a sustained run of millions of jobs.
//
// The pipeline, each stage streaming into the next:
//
//	Reader (bufio-scanned rows -> JobRecord iterator, bounded memory)
//	  -> Fitter (per-class IAT/duration/shape models from a prefix)
//	  -> arrival sources (Replay | Fitted | Poisson, all open loop)
//	  -> PhasePlan/PhaseStats (warmup -> measurement -> drain cutover)
//	  -> ResultWriter (incremental CSV/JSONL completion records)
//
// Everything draws from labeled stats streams, so a generated trace, a
// fitted model and a synthetic arrival sequence are pure functions of
// their seeds; the offline `tracereplay` experiment relies on this for
// bit-identical replays.
package traceload

import (
	"fmt"
	"time"

	"ssr/internal/dag"
)

// Workload class labels used by the generator and the default class
// mapping. A trace may carry arbitrary class labels; these two are the
// conventional ones for latency-sensitive production jobs and throughput
// batch work (the Google trace's scheduling-class split).
const (
	ClassProd  = "prod"
	ClassBatch = "batch"
)

// DefaultClass maps a trace workload class to the scheduler's two-level
// class model: "prod" is foreground (the paper's service jobs), everything
// else is background batch.
func DefaultClass(class string) dag.Class {
	if class == ClassProd {
		return dag.Foreground
	}
	return dag.Background
}

// JobRecord is one job of a trace: a chain of phases with pre-drawn task
// durations, the streaming unit every pipeline stage exchanges. A record
// is self-contained — holding one at a time is all the Reader needs, which
// is what keeps ingest memory bounded regardless of trace length.
type JobRecord struct {
	// ID is the trace's job identifier (also used as the dag job ID).
	ID int64
	// Name labels the job ("bg-17", "kmeans-3").
	Name string
	// Class is the workload class label ("prod", "batch", ...).
	Class string
	// Priority is the scheduling priority recorded in the trace.
	Priority int
	// Submit is the recorded submission timestamp (trace time).
	Submit time.Duration
	// Durations holds per-phase task durations; phase p depends on p-1.
	Durations [][]time.Duration
	// Copies optionally holds matching speculative-copy durations; a nil
	// inner slice defaults the phase's copies to its task durations.
	Copies [][]time.Duration
}

// Tasks returns the total task count across phases.
func (rec JobRecord) Tasks() int {
	n := 0
	for _, ph := range rec.Durations {
		n += len(ph)
	}
	return n
}

// Build constructs the immutable dag.Job for the record, submitted at the
// given (possibly rescaled) time. Phases form a chain, the class maps via
// DefaultClass, and an optional tenant tags the job for quota accounting.
func (rec JobRecord) Build(submit time.Duration, tenant string) (*dag.Job, error) {
	if len(rec.Durations) == 0 {
		return nil, fmt.Errorf("traceload: job %d has no phases", rec.ID)
	}
	specs := make([]dag.PhaseSpec, len(rec.Durations))
	for p, durs := range rec.Durations {
		spec := dag.PhaseSpec{Durations: append([]time.Duration(nil), durs...)}
		if p < len(rec.Copies) && rec.Copies[p] != nil {
			spec.CopyDurations = append([]time.Duration(nil), rec.Copies[p]...)
		}
		specs[p] = spec
	}
	opts := []dag.Option{
		dag.WithSubmit(submit),
		dag.WithClass(DefaultClass(rec.Class)),
	}
	if tenant != "" {
		opts = append(opts, dag.WithTenant(tenant))
	}
	job, err := dag.Chain(dag.JobID(rec.ID), rec.Name, dag.Priority(rec.Priority), specs, opts...)
	if err != nil {
		return nil, fmt.Errorf("traceload: job %d: %w", rec.ID, err)
	}
	return job, nil
}
