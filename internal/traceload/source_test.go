package traceload

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"ssr/internal/dag"
)

const sampleTrace = `time_sec,job,name,class,priority,phase,task,duration_sec,copy_sec
0.5,1,bg-0,batch,1,0,0,4.0,
0.5,1,bg-0,batch,1,0,1,6.0,5.0
0.5,1,bg-0,batch,1,1,0,2.0,
2.25,2,kmeans-0,prod,10,0,0,3.0,3.5
5.0,3,bg-1,batch,1,0,0,8.0,
`

func TestReaderStreamsJobs(t *testing.T) {
	rd, err := NewReader(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatalf("new reader: %v", err)
	}
	var recs []JobRecord
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d jobs, want 3", len(recs))
	}
	j := recs[0]
	if j.ID != 1 || j.Name != "bg-0" || j.Class != ClassBatch || j.Priority != 1 {
		t.Errorf("job 1 metadata wrong: %+v", j)
	}
	if j.Submit != 500*time.Millisecond {
		t.Errorf("job 1 submit = %v, want 500ms", j.Submit)
	}
	if len(j.Durations) != 2 || len(j.Durations[0]) != 2 || len(j.Durations[1]) != 1 {
		t.Fatalf("job 1 shape wrong: %v", j.Durations)
	}
	if j.Durations[0][1] != 6*time.Second {
		t.Errorf("task duration = %v, want 6s", j.Durations[0][1])
	}
	// Empty copy_sec defaults the copy to the task duration; explicit
	// values are kept.
	if j.Copies[0][0] != 4*time.Second || j.Copies[0][1] != 5*time.Second {
		t.Errorf("copies = %v, want [4s 5s]", j.Copies[0])
	}
	if recs[1].Class != ClassProd || recs[1].Tasks() != 1 {
		t.Errorf("job 2 wrong: %+v", recs[1])
	}
	// A drained reader keeps returning io.EOF.
	if _, err := rd.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("post-EOF Next = %v, want io.EOF", err)
	}
}

func TestReaderBuildsJobs(t *testing.T) {
	rd, err := NewReader(strings.NewReader(sampleTrace))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	job, err := rec.Build(rec.Submit, "bulk")
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if job.ID != 1 || job.Class != dag.Background || job.Tenant != "bulk" {
		t.Errorf("built job wrong: id=%d class=%v tenant=%q", job.ID, job.Class, job.Tenant)
	}
	if job.NumPhases() != 2 {
		t.Errorf("phases = %d, want 2", job.NumPhases())
	}
	if deps := job.Phase(1).Deps; len(deps) != 1 || deps[0] != 0 {
		t.Errorf("phase 1 deps = %v, want [0] (chain)", deps)
	}
}

// TestReaderErrorsCarryLineNumbers walks every malformed-row class and
// asserts the error names the offending line.
func TestReaderErrorsCarryLineNumbers(t *testing.T) {
	header := "time_sec,job,name,class,priority,phase,task,duration_sec,copy_sec\n"
	ok := "1.0,1,a,batch,1,0,0,2.0,\n"
	cases := []struct {
		name string
		rows string
		line int
		want string
	}{
		{"column count", ok + "1.0,2,b,batch,1,0,0\n", 3, "columns"},
		{"bad time", ok + "x,2,b,batch,1,0,0,2.0,\n", 3, "time_sec"},
		{"negative time", ok + "-1,2,b,batch,1,0,0,2.0,\n", 3, "time_sec"},
		{"bad job id", ok + "1.0,x,b,batch,1,0,0,2.0,\n", 3, "job id"},
		{"empty class", ok + "1.0,2,b,,1,0,0,2.0,\n", 3, "class"},
		{"bad priority", ok + "1.0,2,b,batch,p,0,0,2.0,\n", 3, "priority"},
		{"bad phase", ok + "1.0,2,b,batch,1,-1,0,2.0,\n", 3, "phase"},
		{"bad task", ok + "1.0,2,b,batch,1,0,x,2.0,\n", 3, "task"},
		{"zero duration", ok + "1.0,2,b,batch,1,0,0,0,\n", 3, "duration_sec"},
		{"bad copy", ok + "1.0,2,b,batch,1,0,0,2.0,-1\n", 3, "copy_sec"},
		{"time goes backward", ok + "0.5,2,b,batch,1,0,0,2.0,\n", 3, "time-sorted"},
		{"metadata drift", "1.0,1,a,batch,1,0,0,2.0,\n1.0,1,a,prod,1,0,1,2.0,\n", 3, "disagrees"},
		{"phase gap", "1.0,1,a,batch,1,0,0,2.0,\n1.0,1,a,batch,1,2,0,2.0,\n", 3, "contiguous"},
		{"task gap", "1.0,1,a,batch,1,0,0,2.0,\n1.0,1,a,batch,1,0,2,2.0,\n", 3, "contiguous"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rd, err := NewReader(strings.NewReader(header + tc.rows))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			for err == nil {
				_, err = rd.Next()
			}
			if errors.Is(err, io.EOF) {
				t.Fatalf("malformed trace parsed clean")
			}
			if !strings.Contains(err.Error(), fmt.Sprintf("line %d", tc.line)) {
				t.Errorf("error %q does not name line %d", err, tc.line)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestReaderHeaderErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := NewReader(strings.NewReader("a,b\n")); err == nil {
		t.Error("short header should fail")
	}
	if _, err := NewReader(strings.NewReader("time_sec,job,name,class,priority,phase,task,duration_sec,WRONG\n")); err == nil {
		t.Error("mislabeled header should fail")
	}
}

// rowGen synthesizes trace rows on the fly — an io.Reader over a trace
// that is never materialized, for the bounded-memory test.
type rowGen struct {
	jobs        int // total jobs to emit
	perJob      int // tasks per job
	nextJob     int
	buf         []byte
	wroteHeader bool
}

func (g *rowGen) Read(p []byte) (int, error) {
	for len(g.buf) == 0 {
		if !g.wroteHeader {
			g.buf = []byte(strings.Join(TraceHeader, ",") + "\n")
			g.wroteHeader = true
			break
		}
		if g.nextJob >= g.jobs {
			return 0, io.EOF
		}
		id := g.nextJob + 1
		var sb strings.Builder
		for task := 0; task < g.perJob; task++ {
			fmt.Fprintf(&sb, "%d.0,%d,j-%d,batch,1,0,%d,1.5,\n", id, id, id, task)
		}
		g.buf = []byte(sb.String())
		g.nextJob++
	}
	n := copy(p, g.buf)
	g.buf = g.buf[n:]
	return n, nil
}

// TestReaderBoundedMemory feeds a trace source far larger than an explicit
// row cap through the Reader and asserts the high-water mark of buffered
// rows is the largest single job — not the trace length. This is the
// no-full-trace-materialization guarantee behind sustained million-job
// runs.
func TestReaderBoundedMemory(t *testing.T) {
	const (
		jobs   = 60_000
		perJob = 4
		rowCap = 1_000 // explicit cap: trace has 240k rows, 240x larger
	)
	rd, err := NewReader(&rowGen{jobs: jobs, perJob: perJob})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("job %d: %v", count, err)
		}
		if rec.Tasks() != perJob {
			t.Fatalf("job %d has %d tasks, want %d", rec.ID, rec.Tasks(), perJob)
		}
		count++
	}
	if count != jobs {
		t.Fatalf("streamed %d jobs, want %d", count, jobs)
	}
	if got := rd.MaxBufferedRows(); got > rowCap {
		t.Errorf("max buffered rows = %d, exceeds cap %d (trace materialized?)", got, rowCap)
	}
	if got := rd.MaxBufferedRows(); got != perJob {
		t.Errorf("max buffered rows = %d, want exactly the largest job (%d)", got, perJob)
	}
}

func TestWriteRecordRoundTrip(t *testing.T) {
	rec := JobRecord{
		ID: 7, Name: "rt", Class: ClassProd, Priority: 9,
		Submit:    1500 * time.Millisecond,
		Durations: [][]time.Duration{{2 * time.Second, 3 * time.Second}, {time.Second}},
		Copies:    [][]time.Duration{{2 * time.Second, 4 * time.Second}, {time.Second}},
	}
	var sb strings.Builder
	if err := WriteHeader(&sb); err != nil {
		t.Fatal(err)
	}
	if err := WriteRecord(&sb, rec); err != nil {
		t.Fatal(err)
	}
	rd, err := NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.Name != rec.Name || got.Class != rec.Class ||
		got.Priority != rec.Priority || got.Submit != rec.Submit {
		t.Errorf("metadata round trip: got %+v", got)
	}
	for p := range rec.Durations {
		for i := range rec.Durations[p] {
			if got.Durations[p][i] != rec.Durations[p][i] {
				t.Errorf("duration [%d][%d] = %v, want %v", p, i, got.Durations[p][i], rec.Durations[p][i])
			}
			if got.Copies[p][i] != rec.Copies[p][i] {
				t.Errorf("copy [%d][%d] = %v, want %v", p, i, got.Copies[p][i], rec.Copies[p][i])
			}
		}
	}
}
