package traceload

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"ssr/internal/stats"
)

// An Arrival is a job plus the open-loop instant it should be submitted,
// as an offset from the start of the run. Arrival sources are streaming
// like trace Sources: Next returns io.EOF when the process ends, and a
// source never holds more than O(1) records.
type Arrival struct {
	Rec JobRecord
	At  time.Duration
}

// ArrivalSource generates an open-loop arrival sequence with
// nondecreasing At.
type ArrivalSource interface {
	Next() (Arrival, error)
}

// replaySource replays recorded trace timestamps, compressed by a speedup
// factor and rebased so the first job arrives at offset zero.
type replaySource struct {
	src     Source
	speedup float64
	base    time.Duration
	started bool
}

// Replay returns an arrival source that submits each trace job at its
// recorded timestamp divided by speedup (2 = twice as fast). Task
// durations are untouched — speedup compresses the arrival process only,
// the knob the paper's open-loop load experiments turn.
func Replay(src Source, speedup float64) (ArrivalSource, error) {
	if speedup <= 0 {
		return nil, fmt.Errorf("traceload: replay speedup %v must be positive", speedup)
	}
	return &replaySource{src: src, speedup: speedup}, nil
}

func (r *replaySource) Next() (Arrival, error) {
	rec, err := r.src.Next()
	if err != nil {
		return Arrival{}, err
	}
	if !r.started {
		r.base = rec.Submit
		r.started = true
	}
	at := time.Duration(float64(rec.Submit-r.base) / r.speedup)
	return Arrival{Rec: rec, At: at}, nil
}

// poissonSource replays trace jobs in order but re-times them as a Poisson
// process at a fixed aggregate rate, the classical open-loop baseline.
type poissonSource struct {
	src  Source
	rate float64
	rng  *rand.Rand
	next time.Duration
}

// Poisson returns an arrival source that submits the trace's jobs with
// exponential inter-arrival gaps at rate jobs/sec, ignoring recorded
// timestamps.
func Poisson(src Source, rate float64, rng *rand.Rand) (ArrivalSource, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("traceload: poisson rate %v must be positive", rate)
	}
	return &poissonSource{src: src, rate: rate, rng: rng}, nil
}

func (p *poissonSource) Next() (Arrival, error) {
	rec, err := p.src.Next()
	if err != nil {
		return Arrival{}, err
	}
	at := p.next
	p.next += time.Duration(p.rng.ExpFloat64() / p.rate * float64(time.Second))
	return Arrival{Rec: rec, At: at}, nil
}

// fittedClass is the per-class generation state of a fitted source.
type fittedClass struct {
	model ClassModel
	rng   *rand.Rand // IAT draws for this class
	next  time.Duration
}

// fittedSource samples the fitted model: each class runs its own renewal
// arrival process, and the source merges them in time order. Job shapes
// and durations come from a per-job labeled substream, so job i is the
// same whatever the interleaving.
type fittedSource struct {
	seed    int64
	classes []*fittedClass
	maxJobs int // 0 = unbounded
	emitted int
	baseID  int64
}

// Fitted returns an open-loop arrival source that generates up to maxJobs
// synthetic jobs (0 = unbounded) from a fitted model. This is the
// million-job path: the source derives everything from the model and the
// seed, so it never touches the trace again and runs in O(classes) memory.
func Fitted(model *Model, seed int64, maxJobs int) (ArrivalSource, error) {
	if model == nil || len(model.Classes) == 0 {
		return nil, fmt.Errorf("traceload: fitted source needs a model with at least one class")
	}
	fs := &fittedSource{seed: seed, maxJobs: maxJobs, baseID: 1}
	for _, cm := range model.Classes {
		fc := &fittedClass{
			model: cm,
			rng:   stats.SubStream(seed, "traceload-iat-"+cm.Class, 0),
		}
		// Stagger first arrivals by one IAT draw so classes do not all
		// fire at t=0.
		fc.next = secDur(cm.IAT.Sample(fc.rng))
		fs.classes = append(fs.classes, fc)
	}
	return fs, nil
}

func (f *fittedSource) Next() (Arrival, error) {
	if f.maxJobs > 0 && f.emitted >= f.maxJobs {
		return Arrival{}, io.EOF
	}
	// Pick the class whose next arrival is earliest; ties break on class
	// order (sorted names), keeping the merge deterministic.
	var pick *fittedClass
	for _, fc := range f.classes {
		if pick == nil || fc.next < pick.next {
			pick = fc
		}
	}
	at := pick.next
	pick.next += secDur(pick.model.IAT.Sample(pick.rng))

	id := f.baseID + int64(f.emitted)
	rec := synthesizeJob(pick.model, f.seed, f.emitted, id, at)
	f.emitted++
	return Arrival{Rec: rec, At: at}, nil
}

// synthesizeJob draws one job from a class model. All randomness comes
// from a substream labeled by the job's index, so the job is a pure
// function of (seed, index, class).
func synthesizeJob(m ClassModel, seed int64, index int, id int64, submit time.Duration) JobRecord {
	rng := stats.SubStream(seed, "traceload-job-"+m.Class, index)
	tasks := int(m.TaskCounts.Sample(rng) + 0.5)
	if tasks < 1 {
		tasks = 1
	}
	phases := 1
	if rng.Float64() < m.MultiPhase {
		phases = 2
	}
	rec := JobRecord{
		ID:        id,
		Name:      fmt.Sprintf("%s-%d", m.Class, index),
		Class:     m.Class,
		Priority:  m.Priority,
		Submit:    submit,
		Durations: make([][]time.Duration, phases),
		Copies:    make([][]time.Duration, phases),
	}
	width := tasks
	for p := 0; p < phases; p++ {
		if p == 1 {
			width = int(float64(tasks)*m.ReduceRatio + 0.5)
			if width < 1 {
				width = 1
			}
		}
		ds := make([]time.Duration, width)
		cs := make([]time.Duration, width)
		for t := range ds {
			ds[t] = clampTask(secDur(m.Duration.Sample(rng)))
			cs[t] = clampTask(secDur(m.Duration.Sample(rng)))
		}
		rec.Durations[p] = ds
		rec.Copies[p] = cs
	}
	return rec
}

// secDur converts non-negative seconds to a duration.
func secDur(s float64) time.Duration {
	if s < 0 {
		s = 0
	}
	return time.Duration(s * float64(time.Second))
}

// clampTask floors task durations at one millisecond, matching the
// workload synthesizers.
func clampTask(d time.Duration) time.Duration {
	if d < time.Millisecond {
		return time.Millisecond
	}
	return d
}
