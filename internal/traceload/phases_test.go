package traceload

import (
	"testing"
	"time"
)

func TestParsePhases(t *testing.T) {
	plan, err := ParsePhases("30s/2m/45s")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Warmup != 30*time.Second || plan.Measure != 2*time.Minute || plan.Drain != 45*time.Second {
		t.Errorf("plan = %+v", plan)
	}
	plan, err = ParsePhases("0/5m")
	if err != nil {
		t.Fatal(err)
	}
	if plan.Warmup != 0 || plan.Measure != 5*time.Minute || plan.Drain != 0 {
		t.Errorf("plan = %+v", plan)
	}
	for _, bad := range []string{"", "5m", "1s/2s/3s/4s", "x/5m", "5s/x", "5s/0", "-1s/5m", "5s/2m/x"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted", bad)
		}
	}
}

func TestPhasePlanWindows(t *testing.T) {
	plan := PhasePlan{Warmup: 10 * time.Second, Measure: time.Minute, Drain: 5 * time.Second}
	if !plan.Enabled() {
		t.Error("plan should be enabled")
	}
	if w := plan.SubmitWindow(); w != 70*time.Second {
		t.Errorf("submit window = %v, want 70s", w)
	}
	cases := []struct {
		at   time.Duration
		want Phase
	}{
		{0, PhaseWarmup},
		{9 * time.Second, PhaseWarmup},
		{10 * time.Second, PhaseMeasure},
		{69 * time.Second, PhaseMeasure},
		{70 * time.Second, PhaseDrain},
		{time.Hour, PhaseDrain},
	}
	for _, tc := range cases {
		if got := plan.PhaseAt(tc.at); got != tc.want {
			t.Errorf("PhaseAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	// Unbounded measurement: everything after warmup is measure.
	open := PhasePlan{Warmup: time.Second}
	if open.SubmitWindow() != 0 {
		t.Error("unbounded plan should report a zero submit window")
	}
	if open.PhaseAt(time.Hour) != PhaseMeasure {
		t.Error("unbounded plan should never reach drain")
	}
	var zero PhasePlan
	if zero.Enabled() {
		t.Error("zero plan should be disabled")
	}
}

func TestPhaseStatsAttribution(t *testing.T) {
	ps := NewPhaseStats()
	// Warmup traffic: must not leak into measurement numbers.
	for i := 0; i < 5; i++ {
		ps.Submitted(PhaseWarmup)
		ps.Completed(PhaseWarmup, 100) // pathological warmup latencies
	}
	for i := 0; i < 20; i++ {
		ps.Submitted(PhaseMeasure)
		ps.Completed(PhaseMeasure, 0.5)
	}
	ps.Failed(PhaseMeasure)
	ps.Refused(PhaseMeasure)
	ps.Throttled(PhaseMeasure)
	ps.Shed(PhaseMeasure)
	reps := ps.Snapshot()
	if len(reps) != 2 {
		t.Fatalf("got %d phase reports, want 2 (drain untouched)", len(reps))
	}
	if reps[0].Phase != "warmup" || reps[1].Phase != "measure" {
		t.Fatalf("report order: %q, %q", reps[0].Phase, reps[1].Phase)
	}
	m := reps[1]
	if m.Submitted != 20 || m.Completed != 20 {
		t.Errorf("measure submitted/completed = %d/%d, want 20/20", m.Submitted, m.Completed)
	}
	if m.Failed != 1 || m.Refused != 1 || m.Throttled != 1 || m.Shed != 1 {
		t.Errorf("measure error counters = %+v", m)
	}
	if m.MeanSec != 0.5 || m.MaxSec != 0.5 {
		t.Errorf("measure mean/max = %v/%v, want 0.5/0.5", m.MeanSec, m.MaxSec)
	}
	// Percentiles come from the histogram: nonzero and nowhere near the
	// warmup's 100s tail.
	if m.P50Sec <= 0 || m.P50Sec > 2 {
		t.Errorf("measure p50 = %v, polluted by warmup?", m.P50Sec)
	}
	if m.P99Sec < m.P50Sec {
		t.Errorf("p99 %v < p50 %v", m.P99Sec, m.P50Sec)
	}
	if reps[0].MaxSec != 100 {
		t.Errorf("warmup max = %v, want 100", reps[0].MaxSec)
	}
}

func TestPhaseStatsEmptySnapshot(t *testing.T) {
	if reps := NewPhaseStats().Snapshot(); len(reps) != 0 {
		t.Errorf("untouched stats produced %d reports", len(reps))
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseWarmup.String() != "warmup" || PhaseMeasure.String() != "measure" || PhaseDrain.String() != "drain" {
		t.Error("phase names wrong")
	}
	if Phase(9).String() != "Phase(9)" {
		t.Error("unknown phase formatting wrong")
	}
}
