package traceload

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"ssr/internal/obs"
)

// Phased runs split a sustained load test into warmup (cache and
// steady-state ramp, measurements discarded), measurement (the numbers
// that count) and drain (submissions stop; in-flight jobs finish). Stats
// cut over per phase: each phase owns its counters and latency histogram,
// and a completion is attributed to the phase its job was *submitted* in,
// so a slow warmup job finishing late never pollutes the measurement
// percentiles.

// Phase identifies a run phase.
type Phase int

// Run phases, in order.
const (
	PhaseWarmup Phase = iota
	PhaseMeasure
	PhaseDrain
)

func (p Phase) String() string {
	switch p {
	case PhaseWarmup:
		return "warmup"
	case PhaseMeasure:
		return "measure"
	case PhaseDrain:
		return "drain"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhasePlan is the phased-run schedule. A zero Warmup skips straight to
// measurement; Measure 0 means "unbounded" (the source decides when the
// run ends); Drain bounds how long the run waits for in-flight jobs after
// submissions stop.
type PhasePlan struct {
	Warmup  time.Duration
	Measure time.Duration
	Drain   time.Duration
}

// Enabled reports whether the plan bounds the submission window.
func (p PhasePlan) Enabled() bool { return p.Warmup > 0 || p.Measure > 0 }

// SubmitWindow returns the total open-loop submission window (0 =
// unbounded).
func (p PhasePlan) SubmitWindow() time.Duration {
	if p.Measure == 0 {
		return 0
	}
	return p.Warmup + p.Measure
}

// PhaseAt returns the phase a submission at the given run offset belongs
// to.
func (p PhasePlan) PhaseAt(elapsed time.Duration) Phase {
	if elapsed < p.Warmup {
		return PhaseWarmup
	}
	if p.Measure == 0 || elapsed < p.Warmup+p.Measure {
		return PhaseMeasure
	}
	return PhaseDrain
}

// ParsePhases parses "warmup/measure[/drain]" duration specs, e.g.
// "30s/2m/30s" or "0/5m".
func ParsePhases(s string) (PhasePlan, error) {
	parts := strings.Split(strings.TrimSpace(s), "/")
	if len(parts) < 2 || len(parts) > 3 {
		return PhasePlan{}, fmt.Errorf("traceload: phases %q must be warmup/measure[/drain]", s)
	}
	parse := func(name, v string) (time.Duration, error) {
		v = strings.TrimSpace(v)
		if v == "0" {
			return 0, nil
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("traceload: phases %q: %s %q: %w", s, name, v, err)
		}
		if d < 0 {
			return 0, fmt.Errorf("traceload: phases %q: %s must be non-negative", s, name)
		}
		return d, nil
	}
	var plan PhasePlan
	var err error
	if plan.Warmup, err = parse("warmup", parts[0]); err != nil {
		return PhasePlan{}, err
	}
	if plan.Measure, err = parse("measure", parts[1]); err != nil {
		return PhasePlan{}, err
	}
	if plan.Measure == 0 {
		return PhasePlan{}, fmt.Errorf("traceload: phases %q: measure window must be positive", s)
	}
	if len(parts) == 3 {
		if plan.Drain, err = parse("drain", parts[2]); err != nil {
			return PhasePlan{}, err
		}
	}
	return plan, nil
}

// phaseBucket accumulates one phase's counters and latencies.
type phaseBucket struct {
	submitted int
	completed int
	failed    int
	refused   int
	throttled int
	shed      int
	latency   *obs.Histogram
	latSum    float64
	latMax    float64
}

// PhaseStats is the concurrency-safe per-phase accounting of a phased run.
// Latencies go into fixed-bucket histograms (obs.LatencyBuckets), so the
// stats footprint is O(phases × buckets) — constant over a million-job
// run.
type PhaseStats struct {
	mu      sync.Mutex
	buckets [3]phaseBucket
}

// NewPhaseStats returns zeroed per-phase accounting.
func NewPhaseStats() *PhaseStats {
	ps := &PhaseStats{}
	for i := range ps.buckets {
		ps.buckets[i].latency = obs.NewHistogram(obs.LatencyBuckets)
	}
	return ps
}

// Submitted counts a submission in the given phase.
func (ps *PhaseStats) Submitted(p Phase) {
	ps.mu.Lock()
	ps.buckets[p].submitted++
	ps.mu.Unlock()
}

// Completed counts a completion (attributed to the submit phase) with its
// client-observed latency in seconds.
func (ps *PhaseStats) Completed(p Phase, latencySec float64) {
	ps.mu.Lock()
	b := &ps.buckets[p]
	b.completed++
	b.latSum += latencySec
	if latencySec > b.latMax {
		b.latMax = latencySec
	}
	ps.mu.Unlock()
	ps.buckets[p].latency.Observe(latencySec)
}

// Failed counts a failed job.
func (ps *PhaseStats) Failed(p Phase) { ps.count(p, func(b *phaseBucket) { b.failed++ }) }

// Refused counts a job the service rejected after retries.
func (ps *PhaseStats) Refused(p Phase) { ps.count(p, func(b *phaseBucket) { b.refused++ }) }

// Throttled counts one 429 backpressure round trip.
func (ps *PhaseStats) Throttled(p Phase) { ps.count(p, func(b *phaseBucket) { b.throttled++ }) }

// Shed counts an arrival dropped by the client-side in-flight cap.
func (ps *PhaseStats) Shed(p Phase) { ps.count(p, func(b *phaseBucket) { b.shed++ }) }

func (ps *PhaseStats) count(p Phase, fn func(*phaseBucket)) {
	ps.mu.Lock()
	fn(&ps.buckets[p])
	ps.mu.Unlock()
}

// PhaseReport is the snapshot of one phase.
type PhaseReport struct {
	Phase     string  `json:"phase"`
	Submitted int     `json:"submitted"`
	Completed int     `json:"completed"`
	Failed    int     `json:"failed,omitempty"`
	Refused   int     `json:"refused,omitempty"`
	Throttled int     `json:"throttled,omitempty"`
	Shed      int     `json:"shed,omitempty"`
	MeanSec   float64 `json:"meanSec,omitempty"`
	P50Sec    float64 `json:"p50Sec,omitempty"`
	P90Sec    float64 `json:"p90Sec,omitempty"`
	P99Sec    float64 `json:"p99Sec,omitempty"`
	MaxSec    float64 `json:"maxSec,omitempty"`
}

// Snapshot returns per-phase reports in phase order, skipping phases that
// saw no traffic.
func (ps *PhaseStats) Snapshot() []PhaseReport {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var out []PhaseReport
	for p, b := range ps.buckets {
		if b.submitted == 0 && b.completed == 0 && b.shed == 0 {
			continue
		}
		rep := PhaseReport{
			Phase:     Phase(p).String(),
			Submitted: b.submitted,
			Completed: b.completed,
			Failed:    b.failed,
			Refused:   b.refused,
			Throttled: b.throttled,
			Shed:      b.shed,
			MaxSec:    b.latMax,
		}
		if b.completed > 0 {
			snap := b.latency.Snapshot()
			rep.MeanSec = b.latSum / float64(b.completed)
			rep.P50Sec = snap.Quantile(0.50)
			rep.P90Sec = snap.Quantile(0.90)
			rep.P99Sec = snap.Quantile(0.99)
		}
		out = append(out, rep)
	}
	return out
}
