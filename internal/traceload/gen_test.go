package traceload

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestGenerateRoundTrips(t *testing.T) {
	cfg := DefaultGen()
	cfg.Jobs = 150
	var sb strings.Builder
	if err := Generate(&sb, cfg, 42); err != nil {
		t.Fatalf("generate: %v", err)
	}
	rd, err := NewReader(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("generated trace has a bad header: %v", err)
	}
	classes := map[string]int{}
	count := 0
	for {
		rec, err := rd.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			// The Reader validates ordering, contiguity and positivity, so
			// any error here means the generator emits malformed traces.
			t.Fatalf("generated trace does not parse: %v", err)
		}
		classes[rec.Class]++
		count++
		if rec.Class == ClassProd && rec.Priority != cfg.ProdPriority {
			t.Errorf("prod job %d priority %d, want %d", rec.ID, rec.Priority, cfg.ProdPriority)
		}
		if rec.Class == ClassBatch && rec.Priority != cfg.BatchPriority {
			t.Errorf("batch job %d priority %d, want %d", rec.ID, rec.Priority, cfg.BatchPriority)
		}
		if rec.Class == ClassProd {
			for _, ph := range rec.Durations {
				if len(ph) > cfg.ProdParallelism {
					t.Errorf("prod job %d phase width %d exceeds cap %d", rec.ID, len(ph), cfg.ProdParallelism)
				}
			}
		}
	}
	if count != cfg.Jobs {
		t.Fatalf("trace has %d jobs, want %d", count, cfg.Jobs)
	}
	// With BatchFraction 0.85 over 150 jobs both classes appear.
	if classes[ClassBatch] == 0 || classes[ClassProd] == 0 {
		t.Errorf("class mix %v missing a class", classes)
	}
	if classes[ClassBatch] <= classes[ClassProd] {
		t.Errorf("class mix %v does not reflect batch fraction %v", classes, cfg.BatchFraction)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGen()
	cfg.Jobs = 60
	var a, b strings.Builder
	if err := Generate(&a, cfg, 7); err != nil {
		t.Fatal(err)
	}
	if err := Generate(&b, cfg, 7); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different traces")
	}
	var c strings.Builder
	if err := Generate(&c, cfg, 8); err != nil {
		t.Fatal(err)
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidates(t *testing.T) {
	bad := []GenConfig{
		{},
		func() GenConfig { c := DefaultGen(); c.Jobs = 0; return c }(),
		func() GenConfig { c := DefaultGen(); c.RatePerSec = 0; return c }(),
		func() GenConfig { c := DefaultGen(); c.BatchFraction = 1.5; return c }(),
		func() GenConfig { c := DefaultGen(); c.Batch.Alpha = 1; return c }(),
		func() GenConfig { c := DefaultGen(); c.ProdParallelism = 0; return c }(),
	}
	for i, cfg := range bad {
		if err := Generate(io.Discard, cfg, 1); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
