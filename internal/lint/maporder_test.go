// Package lint holds repo-local static checks that run as ordinary tests,
// so CI needs no extra tooling.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// schedulingPackages are the import paths whose iteration order can leak
// into scheduling decisions or deterministic output. Ranging over a map in
// one of these is flagged unless the site carries a //maporder:ok comment
// (same line or the line above) stating why the order cannot matter.
var schedulingPackages = []string{
	"ssr/internal/cluster",
	"ssr/internal/driver",
	"ssr/internal/estimate",
	"ssr/internal/lifecycle",
	"ssr/internal/obs",
	"ssr/internal/realtime",
	"ssr/internal/sched",
	"ssr/internal/service",
	"ssr/internal/shard",
	"ssr/internal/sim",
	"ssr/internal/tenant",
	"ssr/internal/traceload",
}

// TestNoUnorderedMapIterationOnSchedulingPaths is the determinism guard
// from the hot-path speed program: Go randomizes map iteration order, so
// any `for range m` on a scheduling-visible path is a latent replay
// divergence. Fix sites by iterating a sorted slice (see
// cluster.reservedOrder) or annotate provably order-independent ones.
func TestNoUnorderedMapIterationOnSchedulingPaths(t *testing.T) {
	root := repoRoot(t)
	im := &srcImporter{
		root:  root,
		fset:  token.NewFileSet(),
		cache: map[string]*types.Package{},
		files: map[string][]*ast.File{},
	}
	var violations []string
	for _, path := range schedulingPackages {
		pkg, err := im.Import(path)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		info := im.infos[pkg.Path()]
		for _, file := range im.files[pkg.Path()] {
			allowed := suppressedLines(im.fset, file)
			ast.Inspect(file, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv := info.TypeOf(rs.X)
				if tv == nil {
					return true
				}
				if _, isMap := tv.Underlying().(*types.Map); !isMap {
					return true
				}
				pos := im.fset.Position(rs.Pos())
				if allowed[pos.Line] {
					return true
				}
				rel, _ := filepath.Rel(root, pos.Filename)
				violations = append(violations, fmt.Sprintf("%s:%d: range over %s", rel, pos.Line, tv.String()))
				return true
			})
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		t.Errorf("unordered map iteration on scheduling path: %s", v)
	}
	if len(violations) > 0 {
		t.Log("iterate a sorted slice instead, or annotate the `for` line " +
			"with `//maporder:ok <reason>` if the order provably cannot " +
			"affect decisions or deterministic output")
	}
}

// suppressedLines returns the line numbers carrying a //maporder:ok
// comment, plus the line below each (annotation on its own line above the
// range statement).
func suppressedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	out := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "maporder:ok") {
				line := fset.Position(c.Pos()).Line
				out[line] = true
				out[line+1] = true
			}
		}
	}
	return out
}

// srcImporter type-checks ssr packages from source (the module is not in
// GOPATH, so the stock source importer cannot find it) and delegates
// standard-library imports to the compiler's source importer. Stdlib-only:
// no x/tools dependency.
type srcImporter struct {
	root  string
	fset  *token.FileSet
	cache map[string]*types.Package
	infos map[string]*types.Info
	files map[string][]*ast.File
	std   types.Importer
}

func (im *srcImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.cache[path]; ok {
		return pkg, nil
	}
	if !strings.HasPrefix(path, "ssr/") {
		if im.std == nil {
			im.std = importer.ForCompiler(im.fset, "source", nil)
		}
		pkg, err := im.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("stdlib import %s: %w", path, err)
		}
		im.cache[path] = pkg
		return pkg, nil
	}
	dir := filepath.Join(im.root, strings.TrimPrefix(path, "ssr/"))
	pkgs, err := parser.ParseDir(im.fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	if len(pkgs) != 1 {
		return nil, fmt.Errorf("%s: expected one package, found %d", dir, len(pkgs))
	}
	var files []*ast.File
	var names []string
	var astPkg *ast.Package
	for _, p := range pkgs { //maporder:ok single entry; file order re-sorted below
		astPkg = p
	}
	for name := range astPkg.Files { //maporder:ok keys collected then sorted
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		files = append(files, astPkg.Files[name])
	}
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{Importer: im, Error: func(error) {}}
	pkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("check %s: %w", path, err)
	}
	im.cache[path] = pkg
	if im.infos == nil {
		im.infos = map[string]*types.Info{}
	}
	im.infos[path] = info
	im.files[path] = files
	return pkg, nil
}

// repoRoot walks up from the test's working directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}
