package tenant

import (
	"errors"
	"testing"
	"time"
)

func TestAdmitUncappedSingleTenant(t *testing.T) {
	r := NewRegistry()
	r.SetCapacity(8, 0)
	// One tenant is never fair-share rejected, even far past capacity.
	for i := 0; i < 10; i++ {
		if err := r.Admit("solo", 4, 4); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].SlotsInUse != 40 || snap[0].Admitted != 10 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestHardCapExhaustion(t *testing.T) {
	r := NewRegistry()
	r.SetCapacity(16, 0)
	if err := r.Configure(Config{Name: "tiny", MaxSlots: 4}); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("tiny", 3, 3); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := r.Admit("tiny", 2, 2)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("expected QuotaError, got %v", err)
	}
	if qe.Reason != "slot cap" || qe.Tenant != "tiny" {
		t.Fatalf("quota error = %+v", qe)
	}
	if qe.RetryAfter != 2*retryStep {
		t.Fatalf("RetryAfter = %v, want %v (1 outstanding job + 1)", qe.RetryAfter, 2*retryStep)
	}
	// Releasing frees the cap again.
	r.Release("tiny", 3, 3)
	if err := r.Admit("tiny", 4, 4); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
}

func TestRetryAfterGrowsWithQueueDepthAndCaps(t *testing.T) {
	if got := retryAfter(0); got != retryStep {
		t.Fatalf("retryAfter(0) = %v", got)
	}
	if got := retryAfter(3); got != 4*retryStep {
		t.Fatalf("retryAfter(3) = %v", got)
	}
	if got := retryAfter(1 << 20); got != retryCap {
		t.Fatalf("retryAfter(huge) = %v, want cap %v", got, retryCap)
	}
	_ = time.Second // keep time import honest if constants change
}

func TestFairShareRejectionUnderContention(t *testing.T) {
	r := NewRegistry()
	r.SetCapacity(10, 0)
	// Two equal-weight tenants; fair share = 1/2, overcommit 2 → each
	// may hold up to the full cluster but no more once contended.
	if err := r.Admit("a", 6, 6); err != nil {
		t.Fatalf("a: %v", err)
	}
	if err := r.Admit("b", 3, 3); err != nil {
		t.Fatalf("b: %v", err)
	}
	// a now at 6/10; asking 6 more pushes total to 15 > 10 (contended)
	// and a's share to 12/10 = 1.2 > 2.0 × 0.5 = 1.0 → reject.
	err := r.Admit("a", 6, 6)
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "fair share" {
		t.Fatalf("expected fair-share rejection, got %v", err)
	}
	// b asking the same is fine: 9/10 = 0.9 ≤ 1.0.
	if err := r.Admit("b", 6, 6); err != nil {
		t.Fatalf("b second admit: %v", err)
	}
}

func TestDominantShareOrdering(t *testing.T) {
	r := NewRegistry()
	r.SetCapacity(100, 100)
	for _, cfg := range []Config{
		{Name: "a", Weight: 1},
		{Name: "b", Weight: 2},
		{Name: "c", Weight: 1},
	} {
		if err := r.Configure(cfg); err != nil {
			t.Fatal(err)
		}
	}
	// a: 40/100 weighted 1 → 0.40
	// b: 60/100 weighted 2 → 0.30 (dominant resource = slots)
	// c: slots 10/100, tasks 50/100 weighted 1 → 0.50 (tasks dominate)
	mustAdmit(t, r, "a", 40, 10)
	mustAdmit(t, r, "b", 60, 10)
	mustAdmit(t, r, "c", 10, 50)
	got := r.Order()
	want := []string{"b", "a", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DRF order = %v, want %v", got, want)
		}
	}
}

func TestWeightChangeMidRun(t *testing.T) {
	r := NewRegistry()
	r.SetCapacity(10, 0)
	mustAdmit(t, r, "a", 5, 5)
	mustAdmit(t, r, "b", 5, 5)
	// Contended (next admit pushes past 10). Equal weights: a at 5/10
	// asking 6 more → 11/10 = 1.1 > 2.0 × 0.5 → rejected.
	if err := r.Admit("a", 6, 6); !IsQuota(err) {
		t.Fatalf("expected rejection pre-reweight, got %v", err)
	}
	// Tripling a's weight mid-run (usage preserved) lifts its share
	// ceiling to 2.0 × 3/4 = 1.5 and divides its share by 3: 11/30 ≈
	// 0.37 → admitted.
	if err := r.Configure(Config{Name: "a", Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := r.Admit("a", 6, 6); err != nil {
		t.Fatalf("expected admit post-reweight, got %v", err)
	}
	if got := r.Snapshot()[0]; got.SlotsInUse != 11 || got.Weight != 3 {
		t.Fatalf("a status after reweight = %+v", got)
	}
}

func TestCompleteCountsAndFloors(t *testing.T) {
	r := NewRegistry()
	mustAdmit(t, r, "x", 2, 4)
	r.Complete("x", 2, 4)
	// Double release must not go negative.
	r.Release("x", 2, 4)
	st := r.Snapshot()[0]
	if st.SlotsInUse != 0 || st.TasksInFlight != 0 || st.JobsPending != 0 || st.Completed != 1 {
		t.Fatalf("status = %+v", st)
	}
	// Releasing an unknown tenant is a no-op.
	r.Release("ghost", 1, 1)
	if len(r.Snapshot()) != 1 {
		t.Fatal("release created a tenant")
	}
}

func TestIsolationPOverride(t *testing.T) {
	r := NewRegistry()
	if err := r.Configure(Config{Name: "strict", IsolationP: 0.99}); err != nil {
		t.Fatal(err)
	}
	if p, ok := r.IsolationP("strict"); !ok || p != 0.99 {
		t.Fatalf("IsolationP(strict) = %v, %v", p, ok)
	}
	if _, ok := r.IsolationP("other"); ok {
		t.Fatal("unconfigured tenant reported an override")
	}
	if err := r.Configure(Config{Name: "bad", IsolationP: 1.5}); err == nil {
		t.Fatal("accepted P > 1")
	}
}

func TestParseSpec(t *testing.T) {
	r, err := ParseSpec("ads:cap=8,weight=2,p=0.99; batch:weight=0.5 ;solo")
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("parsed %d tenants", len(snap))
	}
	ads := snap[0]
	if ads.Name != "ads" || ads.MaxSlots != 8 || ads.Weight != 2 || ads.IsolationP != 0.99 {
		t.Fatalf("ads = %+v", ads)
	}
	if snap[1].Name != "batch" || snap[1].Weight != 0.5 {
		t.Fatalf("batch = %+v", snap[1])
	}
	if snap[2].Name != "solo" || snap[2].Weight != 1 {
		t.Fatalf("solo = %+v", snap[2])
	}
	for _, bad := range []string{"x:cap=abc", "x:frob=1", "x:cap"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	if empty, err := ParseSpec("  "); err != nil || len(empty.Snapshot()) != 0 {
		t.Fatalf("empty spec: %v", err)
	}
}

func mustAdmit(t *testing.T, r *Registry, name string, slots, tasks int) {
	t.Helper()
	if err := r.Admit(name, slots, tasks); err != nil {
		t.Fatalf("admit %s: %v", name, err)
	}
}
