// Package tenant implements multi-tenant admission control for the SSR
// service layer: per-tenant slot quotas (a hard cap plus a weighted fair
// share), DRF-style dominant-share accounting across tenants, and a
// per-tenant isolation probability P so each tenant gets its own Eq. 3
// speculative-reservation deadline.
//
// The registry sits strictly above the scheduler: admission decisions are
// made before a job is routed to a shard, and the driver's slot policy
// never consults tenancy. A single active tenant is never fair-share
// rejected, which keeps the single-default-tenant path bit-identical to a
// tenancy-unaware build.
package tenant

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Default is the tenant jobs land on when the submitter names none.
const Default = "default"

// overcommit is the slack factor applied to a tenant's weighted fair
// share before the DRF admission check rejects: a tenant may hold up to
// overcommit × (w_t/Σw) of the dominant resource while the cluster is
// contended. Values > 1 keep the cluster work-conserving when siblings
// are idle; 2 matches the lending broker's default give-away fraction.
const overcommit = 2.0

// retryStep is the Retry-After unit: one step per job the tenant already
// has outstanding, so backpressure grows with the tenant's queue depth.
const retryStep = 100 * time.Millisecond

// retryCap bounds Retry-After regardless of queue depth.
const retryCap = 10 * time.Second

// Config describes one tenant's quota.
type Config struct {
	// Name identifies the tenant.
	Name string
	// Weight scales the tenant's fair share; zero means 1.
	Weight float64
	// MaxSlots is a hard cap on concurrently held slots; zero means
	// unlimited (only the weighted fair share applies).
	MaxSlots int
	// IsolationP, when in (0, 1], overrides the service-wide Eq. 3
	// isolation probability for this tenant's jobs. Zero inherits.
	IsolationP float64
}

func (c Config) validate() error {
	if c.Name == "" {
		return fmt.Errorf("tenant: config needs a name")
	}
	if c.Weight < 0 {
		return fmt.Errorf("tenant %q: negative weight %v", c.Name, c.Weight)
	}
	if c.MaxSlots < 0 {
		return fmt.Errorf("tenant %q: negative slot cap %d", c.Name, c.MaxSlots)
	}
	if c.IsolationP < 0 || c.IsolationP > 1 {
		return fmt.Errorf("tenant %q: isolation P %v outside (0, 1]", c.Name, c.IsolationP)
	}
	return nil
}

// state is one tenant's live accounting.
type state struct {
	cfg       Config
	slots     int // slots demanded by outstanding jobs
	tasks     int // tasks carried by outstanding jobs
	jobs      int // outstanding (admitted, not yet finished) jobs
	admitted  int64
	rejected  int64
	completed int64
}

// Status is a point-in-time copy of one tenant's quota and usage.
type Status struct {
	Name          string
	Weight        float64
	MaxSlots      int
	IsolationP    float64
	SlotsInUse    int
	TasksInFlight int
	JobsPending   int
	DominantShare float64
	Admitted      int64
	Rejected      int64
	Completed     int64
}

// QuotaError reports an admission rejection with backpressure advice.
type QuotaError struct {
	// Tenant is the rejected tenant.
	Tenant string
	// Reason says which limit tripped ("slot cap", "fair share").
	Reason string
	// RetryAfter advises when to retry, derived from the tenant's
	// outstanding queue depth.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota (%s); retry after %s", e.Tenant, e.Reason, e.RetryAfter)
}

// IsQuota reports whether err is a quota rejection.
func IsQuota(err error) bool {
	_, ok := err.(*QuotaError)
	return ok
}

// Registry tracks tenants, their quotas, and their live usage. The zero
// capacity registry admits everything (no contention to arbitrate), so a
// bare NewRegistry() behaves exactly like a tenancy-unaware service.
type Registry struct {
	mu      sync.Mutex
	slotCap int
	taskCap int
	tenants map[string]*state
	names   []string // sorted; deterministic iteration order
}

// NewRegistry returns an empty registry with no capacity set.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]*state)}
}

// SetCapacity declares the cluster's total slots and task headroom used
// for share computation. tasks <= 0 derives a default from slots.
func (r *Registry) SetCapacity(slots, tasks int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tasks <= 0 {
		tasks = slots * 16
	}
	r.slotCap, r.taskCap = slots, tasks
}

// Configure inserts or updates a tenant's quota. Updating an existing
// tenant (e.g. changing its weight mid-run) keeps its live usage.
func (r *Registry) Configure(cfg Config) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	if cfg.Weight == 0 {
		cfg.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ensureLocked(cfg.Name).cfg = cfg
	return nil
}

// ensureLocked returns the named tenant's state, creating a default
// entry (weight 1, no caps) on first sight. Callers hold r.mu.
func (r *Registry) ensureLocked(name string) *state {
	if st, ok := r.tenants[name]; ok {
		return st
	}
	st := &state{cfg: Config{Name: name, Weight: 1}}
	r.tenants[name] = st
	i := sort.SearchStrings(r.names, name)
	r.names = append(r.names, "")
	copy(r.names[i+1:], r.names[i:])
	r.names[i] = name
	return st
}

// Admit charges a job of the given slot demand and task count against
// the named tenant, or rejects it with a *QuotaError. Unknown tenants
// are auto-created with default quota (weight 1, uncapped).
func (r *Registry) Admit(name string, slots, tasks int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.ensureLocked(name)
	if reason := r.rejectLocked(st, slots); reason != "" {
		st.rejected++
		return &QuotaError{
			Tenant:     name,
			Reason:     reason,
			RetryAfter: retryAfter(st.jobs),
		}
	}
	st.slots += slots
	st.tasks += tasks
	st.jobs++
	st.admitted++
	return nil
}

// rejectLocked applies the two quota checks in order: the tenant's own
// hard cap, then — only when the cluster is contended and at least two
// tenants are active — the DRF weighted fair share. It returns the empty
// string to admit.
func (r *Registry) rejectLocked(st *state, slots int) string {
	if cap := st.cfg.MaxSlots; cap > 0 && st.slots+slots > cap {
		return "slot cap"
	}
	if r.slotCap <= 0 {
		return ""
	}
	// Contention test: would total outstanding slot demand exceed the
	// cluster? Below that, shares cannot conflict and DRF stays silent.
	total := slots
	active := 0
	var weights float64
	for _, n := range r.names {
		t := r.tenants[n]
		total += t.slots
		if t.jobs > 0 || t == st {
			active++
			weights += weight(t)
		}
	}
	if total <= r.slotCap || active < 2 {
		return ""
	}
	// DRF: reject when the admission would push the tenant's dominant
	// share past overcommit × its weighted fair share.
	share := r.dominantLocked(st, slots, 0)
	if share > overcommit*(weight(st)/weights) {
		return "fair share"
	}
	return ""
}

// dominantLocked computes the tenant's dominant share — the max over
// resources of usage/capacity — normalized by its weight, with the given
// extra demand added.
func (r *Registry) dominantLocked(st *state, extraSlots, extraTasks int) float64 {
	var share float64
	if r.slotCap > 0 {
		share = float64(st.slots+extraSlots) / float64(r.slotCap)
	}
	if r.taskCap > 0 {
		if ts := float64(st.tasks+extraTasks) / float64(r.taskCap); ts > share {
			share = ts
		}
	}
	return share / weight(st)
}

func weight(st *state) float64 {
	if st.cfg.Weight <= 0 {
		return 1
	}
	return st.cfg.Weight
}

// retryAfter derives backpressure advice from the tenant's outstanding
// queue depth: deeper queues push retries further out.
func retryAfter(outstanding int) time.Duration {
	d := retryStep * time.Duration(outstanding+1)
	if d > retryCap {
		d = retryCap
	}
	return d
}

// Release returns an admitted job's demand without counting a
// completion (submission rollback, job failure).
func (r *Registry) Release(name string, slots, tasks int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.releaseLocked(name, slots, tasks)
}

// Complete returns an admitted job's demand and counts the completion.
func (r *Registry) Complete(name string, slots, tasks int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.releaseLocked(name, slots, tasks); st != nil {
		st.completed++
	}
}

func (r *Registry) releaseLocked(name string, slots, tasks int) *state {
	st, ok := r.tenants[name]
	if !ok {
		return nil
	}
	if st.slots -= slots; st.slots < 0 {
		st.slots = 0
	}
	if st.tasks -= tasks; st.tasks < 0 {
		st.tasks = 0
	}
	if st.jobs--; st.jobs < 0 {
		st.jobs = 0
	}
	return st
}

// IsolationP returns the tenant's Eq. 3 isolation probability override,
// if one is configured.
func (r *Registry) IsolationP(name string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[name]
	if !ok || st.cfg.IsolationP <= 0 {
		return 0, false
	}
	return st.cfg.IsolationP, true
}

// DominantShare returns the tenant's current weighted dominant share.
func (r *Registry) DominantShare(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	st, ok := r.tenants[name]
	if !ok {
		return 0
	}
	return r.dominantLocked(st, 0, 0)
}

// Order returns all tenant names sorted by ascending dominant share —
// the DRF serve order (the most underserved tenant first), ties broken
// by name for determinism.
func (r *Registry) Order() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	shares := make(map[string]float64, len(out))
	for _, n := range out {
		shares[n] = r.dominantLocked(r.tenants[n], 0, 0)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if shares[out[i]] != shares[out[j]] {
			return shares[out[i]] < shares[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// Snapshot returns every tenant's quota and usage, sorted by name.
func (r *Registry) Snapshot() []Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Status, 0, len(r.names))
	for _, n := range r.names {
		st := r.tenants[n]
		out = append(out, Status{
			Name:          n,
			Weight:        weight(st),
			MaxSlots:      st.cfg.MaxSlots,
			IsolationP:    st.cfg.IsolationP,
			SlotsInUse:    st.slots,
			TasksInFlight: st.tasks,
			JobsPending:   st.jobs,
			DominantShare: r.dominantLocked(st, 0, 0),
			Admitted:      st.admitted,
			Rejected:      st.rejected,
			Completed:     st.completed,
		})
	}
	return out
}
