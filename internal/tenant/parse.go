package tenant

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec builds a registry from a flag-friendly spec string:
//
//	name[:cap=N][,weight=W][,p=P][;name2:...]
//
// e.g. "ads:cap=8,weight=2,p=0.99;batch:weight=1". Attribute order is
// free; unknown attributes are errors. An empty spec yields an empty
// registry (every tenant auto-created with defaults on first submit).
func ParseSpec(spec string) (*Registry, error) {
	r := NewRegistry()
	if strings.TrimSpace(spec) == "" {
		return r, nil
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, attrs, _ := strings.Cut(entry, ":")
		cfg := Config{Name: strings.TrimSpace(name)}
		if attrs != "" {
			for _, kv := range strings.Split(attrs, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("tenant: spec %q: attribute %q is not key=value", entry, kv)
				}
				switch k {
				case "cap":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("tenant: spec %q: cap: %v", entry, err)
					}
					cfg.MaxSlots = n
				case "weight":
					w, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, fmt.Errorf("tenant: spec %q: weight: %v", entry, err)
					}
					cfg.Weight = w
				case "p":
					p, err := strconv.ParseFloat(v, 64)
					if err != nil {
						return nil, fmt.Errorf("tenant: spec %q: p: %v", entry, err)
					}
					cfg.IsolationP = p
				default:
					return nil, fmt.Errorf("tenant: spec %q: unknown attribute %q", entry, k)
				}
			}
		}
		if err := r.Configure(cfg); err != nil {
			return nil, err
		}
	}
	return r, nil
}
