package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ssr/internal/experiments"
)

func TestMapPreservesIndexOrder(t *testing.T) {
	for _, parallel := range []int{1, 2, 8} {
		got, err := Map(parallel, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestMapAggregatesAllErrors(t *testing.T) {
	boom3 := errors.New("boom3")
	boom7 := errors.New("boom7")
	for _, parallel := range []int{1, 4} {
		_, err := Map(parallel, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, boom3
			case 7:
				return 0, boom7
			}
			return i, nil
		})
		if !errors.Is(err, boom3) || !errors.Is(err, boom7) {
			t.Errorf("parallel=%d: error should join both failures, got: %v", parallel, err)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const parallel = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(parallel, 50, func(i int) (int, error) {
		n := cur.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > parallel {
		t.Errorf("observed %d concurrent calls, want <= %d", p, parallel)
	}
}

func TestMapZeroCells(t *testing.T) {
	got, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRunReportsCellErrorsInOrder(t *testing.T) {
	exp := experiments.Define("failing", "test",
		func(experiments.Params) ([]experiments.Cell, error) {
			var cells []experiments.Cell
			for i := 0; i < 6; i++ {
				cells = append(cells, experiments.Cell{
					Key: fmt.Sprintf("failing/c%d", i),
					Run: func() (any, error) {
						if i%2 == 1 {
							return nil, fmt.Errorf("odd cell %d", i)
						}
						return i, nil
					},
				})
			}
			return cells, nil
		},
		func(experiments.Params, []any) (*experiments.Result, error) {
			t.Fatal("Assemble must not run when cells fail")
			return nil, nil
		})
	_, err := Run(exp, experiments.QuickParams(), Options{Parallel: 4})
	if err == nil {
		t.Fatal("expected error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error should expose CellError, got %T: %v", err, err)
	}
	for _, key := range []string{"failing/c1", "failing/c3", "failing/c5"} {
		if !strings.Contains(err.Error(), key) {
			t.Errorf("error should report %s: %v", key, err)
		}
	}
}

func TestRunProgress(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	keys := map[string]bool{}
	e, ok := experiments.Lookup("fig10")
	if !ok {
		t.Fatal("fig10 not registered")
	}
	cells, err := e.Cells(experiments.QuickParams())
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(e, experiments.QuickParams(), Options{
		Parallel: 4,
		Progress: func(done, total int, key string) {
			mu.Lock()
			defer mu.Unlock()
			if total != len(cells) {
				t.Errorf("total = %d, want %d", total, len(cells))
			}
			dones = append(dones, done)
			keys[key] = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != len(cells) || len(keys) != len(cells) {
		t.Fatalf("progress calls = %d distinct keys = %d, want %d", len(dones), len(keys), len(cells))
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence not monotone: %v", dones)
		}
	}
}

// TestParallelMatchesSerialForEveryExperiment is the acceptance test of
// the harness: for every registered experiment, a parallel run at several
// worker counts must produce a Result that is deeply equal to the serial
// reference and renders to identical bytes (text and JSON). Run with
// -race in CI, this also shakes out shared state between cells.
func TestParallelMatchesSerialForEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment four times")
	}
	p := experiments.QuickParams()
	for _, e := range experiments.All() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			t.Parallel()
			want, err := experiments.RunSerial(e, p)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			wantText := want.String()
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			for _, parallel := range []int{1, 2, 8} {
				got, err := Run(e, p, Options{Parallel: parallel})
				if err != nil {
					t.Fatalf("parallel=%d: %v", parallel, err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("parallel=%d: Result differs from serial", parallel)
				}
				if gotText := got.String(); gotText != wantText {
					t.Errorf("parallel=%d: text output differs:\n--- serial\n%s\n--- parallel\n%s",
						parallel, wantText, gotText)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatalf("parallel=%d: marshal: %v", parallel, err)
				}
				if string(gotJSON) != string(wantJSON) {
					t.Errorf("parallel=%d: JSON output differs", parallel)
				}
			}
		})
	}
}
