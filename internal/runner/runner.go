// Package runner executes experiment cells concurrently. An experiment's
// cells (sweep points and replications) share no mutable state and derive
// their randomness from content-labeled seed streams, so the runner may
// execute them in any order on any number of workers; values are assembled
// in cell order, which makes parallel output byte-for-byte identical to a
// serial run. See internal/experiments for the cell contract and
// RunSerial, the single-goroutine reference implementation.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ssr/internal/experiments"
)

// Options configure a parallel experiment run.
type Options struct {
	// Parallel is the worker count; 0 or less selects GOMAXPROCS.
	Parallel int
	// Progress, if set, is called after each completed cell with the
	// number of finished cells, the total and the finished cell's key.
	// Calls are serialized but may arrive in any cell order.
	Progress func(done, total int, key string)
}

// CellError reports a failed cell with its position and key.
type CellError struct {
	// Index is the cell's position in the experiment's cell order.
	Index int
	// Key is the cell's identifying key, e.g. "fig4/kmeans/background/run1".
	Key string
	// Err is the cell's failure.
	Err error
}

func (e *CellError) Error() string { return fmt.Sprintf("cell %s: %v", e.Key, e.Err) }

func (e *CellError) Unwrap() error { return e.Err }

// workers normalizes a Parallel option to a worker count.
func workers(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// Map runs fn(0..n-1) on up to parallel workers and returns the results in
// index order. Unlike a fail-fast loop it always runs every index and
// aggregates every failure (joined in index order), so a sweep reports all
// broken cells at once rather than the first one scheduled. parallel <= 1
// runs inline on the calling goroutine, in index order.
func Map[T any](parallel, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	w := workers(parallel)
	if w == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, errors.Join(errs...)
	}
	if w > n {
		w = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// Each index writes only its own slot, so the slices
				// need no locking.
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out, errors.Join(errs...)
}

// Run executes one experiment: it enumerates the cells, runs them on the
// configured workers and assembles the result. The output is identical to
// experiments.RunSerial for any worker count; on failure the returned
// error joins one CellError per failed cell, in cell order.
func Run(e experiments.Experiment, p experiments.Params, opts Options) (*experiments.Result, error) {
	cells, err := e.Cells(p)
	if err != nil {
		return nil, err
	}
	var (
		mu   sync.Mutex
		done int
	)
	values, err := Map(opts.Parallel, len(cells), func(i int) (any, error) {
		v, err := cells[i].Run()
		if err != nil {
			err = &CellError{Index: i, Key: cells[i].Key, Err: err}
		}
		if opts.Progress != nil {
			mu.Lock()
			done++
			opts.Progress(done, len(cells), cells[i].Key)
			mu.Unlock()
		}
		return v, err
	})
	if err != nil {
		return nil, err
	}
	return e.Assemble(p, values)
}
