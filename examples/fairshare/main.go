// Fair sharing across barriers (the paper's Fig. 13): a pipelined job and
// a map-only job share a cluster under max-min fair scheduling. Without
// reservation the pipelined job surrenders its share at every barrier;
// with SSR it holds its half throughout. The example renders both
// allocation timelines as ASCII strips.
//
// Run with: go run ./examples/fairshare
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/metrics"
	"ssr/internal/sched"
	"ssr/internal/sim"
	"ssr/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const slots = 16
	for _, mode := range []driver.Mode{driver.ModeNone, driver.ModeSSR} {
		tl, jct, makespan, err := simulate(mode)
		if err != nil {
			return err
		}
		label := "work conserving (no reservation)"
		if mode == driver.ModeSSR {
			label = "speculative slot reservation"
		}
		fmt.Printf("--- %s ---\n", label)
		fmt.Printf("pipelined job-1 JCT: %v\n", jct.Round(time.Second))
		fmt.Println(render("job-1 (3 phases) ", tl, 1, makespan, slots))
		fmt.Println(render("job-2 (map only) ", tl, 2, makespan, slots))
		fmt.Println()
	}
	fmt.Println("Each column is a time slice; characters show the job's slot share")
	fmt.Println("(space=0 ... #=full). Note job-1's share collapsing at its two")
	fmt.Println("barriers without reservation, and holding steady with SSR.")
	return nil
}

// simulate runs the two-job fair-sharing scenario and returns job-1's
// allocation timeline.
func simulate(mode driver.Mode) (*metrics.Timeline, time.Duration, time.Duration, error) {
	eng := sim.New()
	cl, err := cluster.New(8, 2)
	if err != nil {
		return nil, 0, 0, err
	}
	opts := driver.Options{
		Queue:          sched.NewFairQueue(),
		Mode:           mode,
		RecordTimeline: true,
	}
	if mode == driver.ModeSSR {
		opts.SSR = core.DefaultConfig()
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		return nil, 0, 0, err
	}

	rng := stats.NewRNG(3)
	dist, err := stats.LogNormalWithMean(0.3, 5)
	if err != nil {
		return nil, 0, 0, err
	}
	phase := func(tasks int) dag.PhaseSpec {
		ds := make([]time.Duration, tasks)
		for i := range ds {
			ds[i] = time.Duration(dist.Sample(rng) * float64(time.Second))
		}
		return dag.PhaseSpec{Durations: ds}
	}
	pipelined, err := dag.Chain(1, "pipelined", 5, []dag.PhaseSpec{
		phase(8), phase(8), phase(8),
	})
	if err != nil {
		return nil, 0, 0, err
	}
	maponly, err := dag.Chain(2, "maponly", 5, []dag.PhaseSpec{phase(64)})
	if err != nil {
		return nil, 0, 0, err
	}
	for _, j := range []*dag.Job{pipelined, maponly} {
		if err := d.Submit(j); err != nil {
			return nil, 0, 0, err
		}
	}
	if err := d.Run(); err != nil {
		return nil, 0, 0, err
	}
	st, _ := d.Result(1)
	return d.Timeline(), st.JCT(), d.Makespan(), nil
}

// render draws a job's allocation series as an ASCII strip of 64 columns.
func render(label string, tl *metrics.Timeline, job dag.JobID, span time.Duration, slots int) string {
	const cols = 64
	levels := " .:-=+*%#"
	var b strings.Builder
	b.WriteString(label)
	for i := 0; i < cols; i++ {
		t := span * time.Duration(i) / cols
		v := tl.At(job, t)
		idx := v * (len(levels) - 1) / slots
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}
