// Heterogeneous resource demands (the paper's Sec. III-C discussion): a
// Tez-style job whose phases need different slot sizes runs on a cluster
// mixing small and large slots. When a phase's slots are too small for the
// downstream tasks, speculative slot reservation releases them immediately
// and pre-reserves right-sized slots instead — keeping both isolation (the
// job gets big slots at the barrier) and utilization (the small slots go
// back to the pool at once).
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 4 nodes, each with two small (size-1) and one large (size-4) slot.
	eng := sim.New()
	cl, err := cluster.NewSized(4, []int{1, 1, 4})
	if err != nil {
		return err
	}
	rec := &trace.Recorder{}
	d, err := driver.New(eng, cl, driver.Options{
		Mode:  driver.ModeSSR,
		SSR:   core.DefaultConfig(),
		Trace: rec,
	})
	if err != nil {
		return err
	}

	// A Tez-style pipeline: a wide scan of small tasks, then a join that
	// needs big (size-4) containers, then a small aggregation.
	rng := stats.NewRNG(4)
	dist, err := stats.LogNormalWithMean(0.3, 3)
	if err != nil {
		return err
	}
	phase := func(tasks, demand int) dag.PhaseSpec {
		ds := make([]time.Duration, tasks)
		for i := range ds {
			ds[i] = time.Duration(dist.Sample(rng) * float64(time.Second))
		}
		return dag.PhaseSpec{Durations: ds, Demand: demand}
	}
	etl, err := dag.Chain(1, "tez-etl", 10, []dag.PhaseSpec{
		phase(8, 1), // scan on the small slots
		phase(4, 4), // join needs the big containers
		phase(2, 1), // aggregate back on small slots
	})
	if err != nil {
		return err
	}
	// Low-priority batch work that would love to keep the big slots.
	batch, err := dag.Chain(2, "batch", 1, []dag.PhaseSpec{phase(24, 1)})
	if err != nil {
		return err
	}
	for _, j := range []*dag.Job{etl, batch} {
		if err := d.Submit(j); err != nil {
			return err
		}
	}
	if err := d.Run(); err != nil {
		return err
	}

	for _, st := range d.Results() {
		fmt.Printf("%-8s JCT=%v\n", st.Job.Name, st.JCT().Round(time.Millisecond))
	}
	fmt.Printf("reserved-idle slot-time: %v\n", d.Usage().ReservedIdleTime().Round(time.Millisecond))
	fmt.Println()
	fmt.Println(trace.Gantt(rec.Events(), trace.GanttOptions{Width: 96}))
	fmt.Println("Rows 2, 5, 8, 11 are the size-4 slots. Watch the etl job's scan")
	fmt.Println("slots get released at its first barrier (they cannot host the")
	fmt.Println("size-4 join) while right-sized slots are pre-reserved for it.")
	return nil
}
