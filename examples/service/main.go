// Service example: run the online SSR scheduler in-process, submit a
// two-phase workflow job through the programmatic client, and print its
// lifecycle event stream as it unfolds in (dilated) wall-clock time.
//
// The same client works against a remote ssrd daemon — swap the httptest
// server for service.NewClient("http://host:port").
//
// Run with: go run ./examples/service
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/service"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An online service over a 4x2 cluster under speculative slot
	// reservation, with virtual time running 100x faster than the wall
	// clock.
	svc, err := service.New(service.Config{
		Nodes:        4,
		SlotsPerNode: 2,
		Dilation:     100,
		Driver: driver.Options{
			Mode: driver.ModeSSR,
			SSR:  core.DefaultConfig(),
		},
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	// Serve the HTTP API in-process; ssrd does exactly this on a TCP port.
	ts := httptest.NewServer(service.NewHandler(svc))
	defer ts.Close()
	cli := service.NewClient(ts.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Watch the event stream from the beginning, in bus order.
	streamCtx, stopStream := context.WithCancel(ctx)
	defer stopStream()
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- cli.StreamEvents(streamCtx, 0, func(ev service.Event) error {
			fmt.Printf("  [%8.0fms] %-14s job=%d phase=%d task=%d slot=%d\n",
				ev.TimeMs, ev.Type, ev.Job, ev.Phase, ev.Task, ev.Slot)
			if ev.Type == "job_done" || ev.Type == "job_fail" {
				stopStream()
			}
			return nil
		})
	}()

	// A two-phase workflow: a wide 6-task map phase feeding a 2-task
	// reduce phase (10s and 4s tasks in virtual time).
	spec := service.JobSpec{
		Name:     "wordcount",
		Priority: 10,
		Phases: []service.PhaseSpec{
			{DurationsMs: []float64{10000, 10000, 10000, 10000, 10000, 10000}},
			{DurationsMs: []float64{4000, 4000}, Deps: []int{0}},
		},
	}
	st, err := cli.Submit(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Printf("submitted job %d (%s), %d phases\n", st.ID, st.Name, st.NumPhases)

	final, err := cli.WaitJob(ctx, st.ID, 10*time.Millisecond)
	if err != nil {
		return err
	}
	if err := <-streamDone; err != nil {
		return err
	}
	fmt.Printf("job %d %s: virtual JCT %.1fs, %d tasks\n",
		final.ID, final.State, final.JCTMs/1000, final.TasksRun)

	ms, err := cli.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("cluster: %.1f%% utilized, %.2f%% reserved-idle over %.1f virtual seconds\n",
		100*ms.Utilization, 100*ms.ReservedFraction, ms.VirtualNowMs/1000)
	return nil
}
