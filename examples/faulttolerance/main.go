// Fault tolerance: a node crashes mid-run, killing the attempts and
// reservations it held. The scheduler retries the killed tasks (with
// backoff) on surviving nodes, and under SSR the voided reservations are
// re-issued elsewhere so the isolation guarantee survives the crash.
//
// The same scripted failure is injected into a plain priority scheduler
// and into SSR; compare how much the foreground pipeline slips.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/faults"
	"ssr/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("Node 1 crashes at t=9s and repairs at t=40s; the foreground")
	fmt.Println("pipeline has a barrier, so losing a node mid-phase hurts twice:")
	fmt.Println("a still-running task is killed AND a slot already reserved for")
	fmt.Println("phase 1 is voided.")
	fmt.Println()
	for _, mode := range []string{"none", "ssr"} {
		if err := simulate(mode); err != nil {
			return err
		}
	}
	fmt.Println("SSR re-issues the voided reservations on surviving nodes, so the")
	fmt.Println("downstream phase still finds slots waiting at the barrier. Without")
	fmt.Println("reservations the retried work also queues behind the batch job.")
	return nil
}

// simulate runs the contended two-job workload with a scripted crash under
// the given reservation policy and prints the foreground outcome.
func simulate(mode string) error {
	eng := sim.New()
	cl, err := cluster.New(4, 2)
	if err != nil {
		return err
	}
	opts := driver.Options{
		// Killed attempts retry on surviving slots after a short backoff.
		Retry: driver.RetryPolicy{MaxAttempts: 5, Backoff: 500 * time.Millisecond},
	}
	if mode == "ssr" {
		opts.Mode = driver.ModeSSR
		opts.SSR = core.DefaultConfig()
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		return err
	}

	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	fg, err := dag.Chain(1, "etl-pipeline", 10, []dag.PhaseSpec{
		{Durations: []time.Duration{sec(8), sec(8), sec(8), sec(10)}},
		{Durations: []time.Duration{sec(6), sec(6), sec(6), sec(6)}},
	})
	if err != nil {
		return err
	}
	bg, err := dag.Chain(2, "batch-scan", 1, []dag.PhaseSpec{
		{Durations: []time.Duration{sec(40), sec(40), sec(40), sec(40), sec(40), sec(40)}},
	})
	if err != nil {
		return err
	}
	for _, j := range []*dag.Job{fg, bg} {
		if err := d.Submit(j); err != nil {
			return err
		}
	}

	// The node goes down after three of the four phase-0 tasks finished
	// (their slots are then reserved for phase 1 under SSR) but while the
	// 10s straggler is still running on it; it comes back much later.
	faults.Script{
		{At: sec(9), Node: 1},
		{At: sec(40), Node: 1, Recover: true},
	}.Install(d)

	if err := d.Run(); err != nil {
		return err
	}
	st, ok := d.Result(fg.ID)
	if !ok {
		return fmt.Errorf("missing foreground result")
	}
	fc := d.Faults()
	fmt.Printf("%-5s fg JCT=%-8v kills=%d retries=%d reservations voided/reissued=%d/%d\n",
		mode, st.JCT(), fc.AttemptsKilled, fc.TasksRetried,
		fc.ReservationsVoided, fc.ReservationsReissued)
	return nil
}
