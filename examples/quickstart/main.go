// Quickstart: build a two-phase workflow job, run it on a simulated
// cluster under speculative slot reservation, and read the results.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A cluster of 4 machines with 2 slots each.
	eng := sim.New()
	cl, err := cluster.New(4, 2)
	if err != nil {
		return err
	}

	// Speculative slot reservation with strict isolation (P = 1).
	d, err := driver.New(eng, cl, driver.Options{
		Mode: driver.ModeSSR,
		SSR:  core.DefaultConfig(),
	})
	if err != nil {
		return err
	}

	// A high-priority job with two pipelined phases of 4 tasks each.
	// The barrier between them means phase 1 cannot start until every
	// phase-0 task has finished.
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	fg, err := dag.Chain(1, "etl-pipeline", 10, []dag.PhaseSpec{
		{Durations: []time.Duration{sec(2), sec(3), sec(2.5), sec(6)}},
		{Durations: []time.Duration{sec(4), sec(4), sec(4), sec(4)}},
	})
	if err != nil {
		return err
	}

	// A competing low-priority batch job with long tasks.
	bg, err := dag.Chain(2, "batch-scan", 1, []dag.PhaseSpec{
		{Durations: []time.Duration{sec(30), sec(30), sec(30), sec(30), sec(30), sec(30)}},
	})
	if err != nil {
		return err
	}

	for _, j := range []*dag.Job{fg, bg} {
		if err := d.Submit(j); err != nil {
			return err
		}
	}
	if err := d.Run(); err != nil {
		return err
	}

	for _, st := range d.Results() {
		alone, err := driver.AloneJCT(st.Job, 4, 2, driver.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-14s priority=%-2d JCT=%-8v alone=%-8v slowdown=%.2f\n",
			st.Job.Name, st.Job.Priority, st.JCT(), alone,
			float64(st.JCT())/float64(alone))
	}
	fmt.Printf("cluster utilization: %.0f%%\n", 100*d.Usage().Utilization(d.Makespan()))
	fmt.Println()
	fmt.Println("The high-priority pipeline keeps its slots across the barrier:")
	fmt.Println("without reservation its early-finishing slots would be handed to")
	fmt.Println("batch-scan's 30s tasks, stalling phase 1 (try Mode: driver.ModeNone).")
	return nil
}
