// Priority isolation: the paper's headline scenario. Three ML-style
// foreground applications run at high priority against a stream of
// low-priority batch jobs, first under plain work-conserving priority
// scheduling, then with speculative slot reservation. The foreground
// slowdowns collapse to ~1.0 under SSR.
//
// Run with: go run ./examples/priorityisolation
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

const (
	nodes   = 25
	perNode = 2
	seed    = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("foreground ML applications vs 60 background batch jobs, 50 slots")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-12s\n", "app", "w/o SSR", "w/ SSR")
	for _, spec := range workload.MLSuite() {
		none, err := slowdown(spec, driver.Options{Mode: driver.ModeNone})
		if err != nil {
			return err
		}
		ssr, err := slowdown(spec, driver.Options{
			Mode: driver.ModeSSR,
			SSR:  core.DefaultConfig(),
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-12.2f %-12.2f\n", spec.Name, none, ssr)
	}
	fmt.Println()
	fmt.Println("Reserved slots bridge each barrier: the application resumes its")
	fmt.Println("downstream phase on the warm, data-local slots it just used.")
	return nil
}

// slowdown runs one foreground application against background jobs under
// the given options and returns JCT / alone-JCT.
func slowdown(spec workload.MLSpec, opts driver.Options) (float64, error) {
	eng := sim.New()
	cl, err := cluster.New(nodes, perNode)
	if err != nil {
		return 0, err
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		return 0, err
	}
	fg, err := spec.Build(1, 10, 45*time.Second, stats.Stream(seed, "fg-"+spec.Name))
	if err != nil {
		return 0, err
	}
	bgCfg := workload.BackgroundConfig{
		Jobs:           60,
		Window:         3 * time.Minute,
		MeanTask:       40 * time.Second,
		Alpha:          1.6,
		DurationScale:  1,
		MaxParallelism: 30,
	}
	bg, err := workload.Background(bgCfg, 100, 1, stats.Stream(seed, "bg"))
	if err != nil {
		return 0, err
	}
	if err := d.Submit(fg); err != nil {
		return 0, err
	}
	for _, j := range bg {
		if err := d.Submit(j); err != nil {
			return 0, err
		}
	}
	if err := d.Run(); err != nil {
		return 0, err
	}
	st, _ := d.Result(fg.ID)
	alone, err := driver.AloneJCT(fg, nodes, perNode, opts)
	if err != nil {
		return 0, err
	}
	return float64(st.JCT()) / float64(alone), nil
}
