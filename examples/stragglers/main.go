// Straggler mitigation with reserved slots (the paper's Sec. IV-C): a job
// with heavy-tailed (Pareto) task durations runs with SSR alone and with
// SSR plus straggler mitigation. The reserved slots that would otherwise
// idle through the tail instead run speculative copies of the slow tasks,
// cutting the completion time dramatically.
//
// Run with: go run ./examples/stragglers
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("KMeans-like job, task durations re-shaped to Pareto(alpha), 20 slots")
	fmt.Println()
	fmt.Printf("%-7s %-14s %-14s %-10s %s\n",
		"alpha", "JCT w/o mit.", "JCT w/ mit.", "reduction", "copies won/launched")
	for _, alpha := range []float64{1.2, 1.6, 2.0, 3.0} {
		noMit, _, _, err := simulate(alpha, false)
		if err != nil {
			return err
		}
		withMit, won, launched, err := simulate(alpha, true)
		if err != nil {
			return err
		}
		reduction := 100 * (float64(noMit) - float64(withMit)) / float64(noMit)
		fmt.Printf("%-7.1f %-14v %-14v %-10s %d/%d\n",
			alpha, noMit.Round(time.Second), withMit.Round(time.Second),
			fmt.Sprintf("%.0f%%", reduction), won, launched)
	}
	fmt.Println()
	fmt.Println("Heavier tails (smaller alpha) leave more reserved slots idle behind")
	fmt.Println("the stragglers, so duplicating the laggards buys more. Copies are")
	fmt.Println("free: they run on slots already reserved for this very job.")
	return nil
}

// simulate runs one heavy-tailed job under SSR and reports its JCT and
// copy statistics.
func simulate(alpha float64, mitigate bool) (time.Duration, int, int, error) {
	eng := sim.New()
	cl, err := cluster.New(10, 2)
	if err != nil {
		return 0, 0, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.MitigateStragglers = mitigate
	d, err := driver.New(eng, cl, driver.Options{Mode: driver.ModeSSR, SSR: cfg})
	if err != nil {
		return 0, 0, 0, err
	}
	base, err := workload.KMeans.Build(1, 10, 0, stats.Stream(11, "stragglers"))
	if err != nil {
		return 0, 0, 0, err
	}
	job, err := workload.ParetoReshape(base, alpha, stats.Stream(12, "reshape"))
	if err != nil {
		return 0, 0, 0, err
	}
	if err := d.Submit(job); err != nil {
		return 0, 0, 0, err
	}
	if err := d.Run(); err != nil {
		return 0, 0, 0, err
	}
	st, ok := d.Result(job.ID)
	if !ok {
		return 0, 0, 0, fmt.Errorf("missing result")
	}
	return st.JCT(), st.CopiesWon, st.CopiesLaunched, nil
}
