// Navigating the isolation/utilization trade-off (the paper's Sec. IV-B):
// sweep the operator knob P — the probability that a phase retains its
// slots through the barrier — and watch the reservation deadline shorten,
// the reserved-idle loss shrink, and the foreground slowdown grow. The
// analytic bound (Eq. 4) is printed next to the measured values.
//
// Run with: go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/model"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

const (
	nodes   = 25
	perNode = 2
	alpha   = 1.6
	seed    = 21
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("KMeans (Pareto 1.6 tasks) vs batch backlog; sweeping isolation P")
	fmt.Println()
	fmt.Printf("%-6s %-10s %-14s %-12s %s\n",
		"P", "slowdown", "reserved-idle", "E[U] bound", "deadline for N=20, tm=2s")
	baselineIdle := time.Duration(0)
	for i, p := range []float64{1.0, 0.8, 0.6, 0.4, 0.2} {
		slow, idle, err := simulate(p)
		if err != nil {
			return err
		}
		if i == 0 {
			baselineIdle = idle
		}
		saved := "-"
		if baselineIdle > 0 && i > 0 {
			saved = fmt.Sprintf("-%.0f%%", 100*(float64(baselineIdle)-float64(idle))/float64(baselineIdle))
		}
		deadline := "none (hold to barrier)"
		if p < 1 {
			d := model.Deadline(p, 2.0, alpha, 20)
			deadline = fmt.Sprintf("%.1fs", d)
		}
		fmt.Printf("%-6.1f %-10.2f %-8v (%s)  %-12.2f %s\n",
			p, slow, idle.Round(time.Second), saved,
			model.UtilizationAtIsolation(p, alpha, 20), deadline)
	}
	fmt.Println()
	fmt.Println("Stricter isolation (P -> 1) pins the slots through the longest")
	fmt.Println("straggler; looser isolation returns them early and the job risks")
	fmt.Println("re-acquiring slots cold. Operators pick P; Eq. 2 yields the deadline.")
	return nil
}

// simulate runs one contended KMeans at isolation level p and returns its
// slowdown and the run's reserved-idle slot-time.
func simulate(p float64) (float64, time.Duration, error) {
	eng := sim.New()
	cl, err := cluster.New(nodes, perNode)
	if err != nil {
		return 0, 0, err
	}
	cfg := core.DefaultConfig()
	cfg.IsolationP = p
	cfg.Alpha = alpha
	opts := driver.Options{Mode: driver.ModeSSR, SSR: cfg}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		return 0, 0, err
	}
	base, err := workload.KMeans.Build(1, 10, 45*time.Second, stats.Stream(seed, "fg"))
	if err != nil {
		return 0, 0, err
	}
	fg, err := workload.ParetoReshape(base, alpha, stats.Stream(seed, "reshape"))
	if err != nil {
		return 0, 0, err
	}
	bgCfg := workload.BackgroundConfig{
		Jobs:           60,
		Window:         3 * time.Minute,
		MeanTask:       40 * time.Second,
		Alpha:          1.6,
		DurationScale:  1,
		MaxParallelism: 30,
	}
	bg, err := workload.Background(bgCfg, 100, 1, stats.Stream(seed, "bg"))
	if err != nil {
		return 0, 0, err
	}
	if err := d.Submit(fg); err != nil {
		return 0, 0, err
	}
	for _, j := range bg {
		if err := d.Submit(j); err != nil {
			return 0, 0, err
		}
	}
	if err := d.Run(); err != nil {
		return 0, 0, err
	}
	st, _ := d.Result(fg.ID)
	alone, err := driver.AloneJCT(fg, nodes, perNode, opts)
	if err != nil {
		return 0, 0, err
	}
	return float64(st.JCT()) / float64(alone), d.Usage().ReservedIdleTime(), nil
}
