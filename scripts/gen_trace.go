// Command gen_trace synthesizes a cluster-trace-shaped CSV from the
// repository's workload presets, so soak tests and demos can produce
// arbitrarily large traces without external downloads:
//
//	go run ./scripts/gen_trace.go -jobs 100000 -rate 4 -out trace.csv
//
// The output streams row by row — a 10M-job trace needs the same memory
// as a 100-job one — and is a pure function of the flags and -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssr/internal/traceload"
	"ssr/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gen_trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	def := traceload.DefaultGen()
	fs := flag.NewFlagSet("gen_trace", flag.ContinueOnError)
	jobs := fs.Int("jobs", def.Jobs, "number of jobs to emit")
	rate := fs.Float64("rate", def.RatePerSec, "aggregate arrival rate (jobs/sec, Poisson)")
	batchFrac := fs.Float64("batch-fraction", def.BatchFraction, "fraction of jobs in the batch class")
	meanTask := fs.Duration("mean-task", def.Batch.MeanTask, "batch mean task duration")
	alpha := fs.Float64("alpha", def.Batch.Alpha, "batch Pareto tail index (>1)")
	batchPar := fs.Int("batch-parallelism", def.Batch.MaxParallelism, "batch max tasks per phase")
	prodPar := fs.Int("prod-parallelism", def.ProdParallelism, "production max tasks per phase")
	seed := fs.Int64("seed", 1, "RNG seed (same flags + seed => identical trace)")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := def
	cfg.Jobs = *jobs
	cfg.RatePerSec = *rate
	cfg.BatchFraction = *batchFrac
	cfg.Batch = workload.DefaultBackground()
	cfg.Batch.MeanTask = *meanTask
	cfg.Batch.Alpha = *alpha
	cfg.Batch.MaxParallelism = *batchPar
	cfg.ProdParallelism = *prodPar

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	if err := traceload.Generate(w, cfg, *seed); err != nil {
		return err
	}
	if *out != "" {
		if err := w.Sync(); err != nil {
			return err
		}
		st, err := w.Stat()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gen_trace: wrote %d jobs (%d bytes) to %s in %s\n",
			cfg.Jobs, st.Size(), *out, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
