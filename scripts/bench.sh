#!/usr/bin/env bash
# Run the scheduler benchmark scenarios and write the per-PR BENCH_*.json
# trajectory snapshot.
#
# Usage: scripts/bench.sh [-short] [extra ssrbench flags...]
#   -short          reduced scale (what CI runs)
#   BENCH_OUT=path  output report path (default BENCH_10.json at repo root)
#   BENCH_BASE=path gate against a prior snapshot (fails on >20% ns/decision
#                   regression); CI passes the previous committed BENCH_*.json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${BENCH_OUT:-BENCH_10.json}"

args=(-out "$out")
if [[ -n "${BENCH_BASE:-}" ]]; then
    args+=(-baseline "$BENCH_BASE")
fi
args+=("$@")

go run ./cmd/ssrbench "${args[@]}"
