#!/usr/bin/env bash
# End-to-end smoke test for the online daemon: build ssrd, boot it on a
# random port, run a two-phase job through the HTTP API with curl, check
# the metrics and event endpoints, then verify a clean SIGTERM drain.
#
# Usage: scripts/e2e_smoke.sh   (from the repo root; needs go + curl)
set -euo pipefail

workdir=$(mktemp -d)
ssrd_pid=""
cleanup() {
    if [[ -n "$ssrd_pid" ]] && kill -0 "$ssrd_pid" 2>/dev/null; then
        kill -KILL "$ssrd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "e2e_smoke: FAIL: $*" >&2
    echo "--- ssrd log ---" >&2
    cat "$workdir/ssrd.log" >&2 || true
    exit 1
}

echo "e2e_smoke: building ssrd"
go build -o "$workdir/ssrd" ./cmd/ssrd

# Port 0 lets the kernel pick; the daemon prints the bound address.
"$workdir/ssrd" -addr 127.0.0.1:0 -nodes 4 -slots 2 -mode ssr \
    -dilation 100 -drain 5s -trace "$workdir/run.csv" \
    >"$workdir/ssrd.log" 2>&1 &
ssrd_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ssrd: listening on \([^ ]*\).*/\1/p' "$workdir/ssrd.log")
    [[ -n "$addr" ]] && break
    kill -0 "$ssrd_pid" 2>/dev/null || fail "daemon exited before listening"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "daemon never reported its address"
base="http://$addr"
echo "e2e_smoke: daemon up at $base"

curl -fsS "$base/healthz" >/dev/null || fail "healthz"

# A two-phase workflow: 4x10s map feeding a 2x4s reduce (virtual time;
# ~0.14 wall seconds at dilation 100).
job=$(curl -fsS -X POST "$base/jobs" -d '{
  "name": "smoke", "priority": 10,
  "phases": [
    {"durationsMs": [10000, 10000, 10000, 10000]},
    {"durationsMs": [4000, 4000], "deps": [0]}
  ]}') || fail "job submission"
id=$(echo "$job" | sed -n 's/.*"id": \([0-9]*\),.*/\1/p' | head -n1)
[[ -n "$id" ]] || fail "no job id in response: $job"
echo "e2e_smoke: submitted job $id"

state=""
for _ in $(seq 1 100); do
    state=$(curl -fsS "$base/jobs/$id" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n1)
    [[ "$state" == "completed" || "$state" == "failed" ]] && break
    sleep 0.1
done
[[ "$state" == "completed" ]] || fail "job state = '$state', want completed"
echo "e2e_smoke: job $id completed"

metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q '"jobsCompleted": 1' || fail "metrics: $metrics"

# Prometheus exposition: every line must be a comment (# HELP / # TYPE) or a
# "name{labels} value" sample, and the family set must be rich enough to be
# worth scraping (>= 10 families, at least one histogram).
prom=$(curl -fsS "$base/metrics?format=prometheus")
bad=$(echo "$prom" | grep -Ev \
    -e '^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$' \
    -e '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$' \
    -e '^$' || true)
[[ -z "$bad" ]] || fail "malformed exposition lines: $bad"
families=$(echo "$prom" | grep -c '^# TYPE ') || true
[[ "$families" -ge 10 ]] || fail "exposition has $families families, want >= 10"
echo "$prom" | grep -q '^# TYPE [a-z_]* histogram' || fail "exposition has no histogram"
echo "$prom" | grep -q '^ssr_jobs_completed 1' || fail "exposition missing completed job"
echo "e2e_smoke: prometheus exposition ok ($families families)"

# The audit stream records the run's reservation decisions as JSON lines.
curl -fsS "$base/audit" | head -n1 | grep -q '"kind"' || fail "audit stream empty"
# The SSE stream never ends on its own; let curl's --max-time cut it.
events=$(curl -fs --max-time 2 "$base/events?since=1" || true)
echo "$events" | grep -q 'job_done' || fail "event stream missing job_done"

kill -TERM "$ssrd_pid"
rc=0
wait "$ssrd_pid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "exit code $rc after SIGTERM, want 0"
grep -q 'drained clean' "$workdir/ssrd.log" || fail "no clean-drain log line"
[[ -s "$workdir/run.csv" ]] || fail "trace file missing or empty"
lines=$(wc -l <"$workdir/run.csv")
[[ "$lines" -ge 7 ]] || fail "trace has $lines lines, want >= 7 (header + 6 attempts)"
ssrd_pid=""

echo "e2e_smoke: PASS"
