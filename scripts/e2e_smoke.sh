#!/usr/bin/env bash
# End-to-end smoke test for the online daemon: build ssrd, boot it on a
# random port with per-tenant quotas, run a two-phase job through the v1
# HTTP API with curl, check quota backpressure (429 + Retry-After), the
# metrics, tenant and event endpoints, the deprecated legacy aliases, then
# verify a clean SIGTERM drain.
#
# Usage: scripts/e2e_smoke.sh   (from the repo root; needs go + curl)
set -euo pipefail

workdir=$(mktemp -d)
ssrd_pid=""
cleanup() {
    if [[ -n "$ssrd_pid" ]] && kill -0 "$ssrd_pid" 2>/dev/null; then
        kill -KILL "$ssrd_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "e2e_smoke: FAIL: $*" >&2
    echo "--- ssrd log ---" >&2
    cat "$workdir/ssrd.log" >&2 || true
    exit 1
}

# require_alive fails fast — with the daemon's exit status and log — the
# moment ssrd is gone, instead of letting the next curl hang or a poll
# loop spin out its full timeout against a dead server.
require_alive() {
    if ! kill -0 "$ssrd_pid" 2>/dev/null; then
        rc=0
        wait "$ssrd_pid" || rc=$?
        ssrd_pid=""
        fail "ssrd exited unexpectedly (status $rc) $*"
    fi
}

echo "e2e_smoke: building ssrd"
go build -o "$workdir/ssrd" ./cmd/ssrd

# Port 0 lets the kernel pick; the daemon prints the bound address. The
# "tiny" tenant's 1-slot cap exists to trip quota backpressure below.
"$workdir/ssrd" -addr 127.0.0.1:0 -nodes 4 -slots 2 -mode ssr \
    -tenants 'tiny:cap=1' \
    -dilation 100 -drain 5s -trace "$workdir/run.csv" \
    >"$workdir/ssrd.log" 2>&1 &
ssrd_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ssrd: listening on \([^ ]*\).*/\1/p' "$workdir/ssrd.log")
    [[ -n "$addr" ]] && break
    require_alive "during startup (before listening)"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "daemon never reported its address"
base="http://$addr"
echo "e2e_smoke: daemon up at $base"

require_alive "right after startup"
curl -fsS --max-time 5 "$base/v1/healthz" >/dev/null || fail "healthz"

# A two-phase workflow: 4x10s map feeding a 2x4s reduce (virtual time;
# ~0.14 wall seconds at dilation 100).
job=$(curl -fsS -X POST "$base/v1/jobs" -d '{
  "name": "smoke", "priority": 10,
  "phases": [
    {"durationsMs": [10000, 10000, 10000, 10000]},
    {"durationsMs": [4000, 4000], "deps": [0]}
  ]}') || fail "job submission"
id=$(echo "$job" | sed -n 's/.*"id": \([0-9]*\),.*/\1/p' | head -n1)
[[ -n "$id" ]] || fail "no job id in response: $job"
echo "e2e_smoke: submitted job $id"

# Quota backpressure: a 4-wide job under the 1-slot "tiny" tenant must be
# rejected with 429, a Retry-After header, and the quota_exhausted code in
# the uniform error envelope.
quota_headers="$workdir/quota_headers.txt"
quota_body=$(curl -sS -D "$quota_headers" -o - -X POST "$base/v1/jobs" -d '{
  "name": "overcap", "tenant": "tiny", "priority": 5,
  "phases": [{"durationsMs": [1000, 1000, 1000, 1000]}]}')
grep -q '^HTTP/[0-9.]* 429' "$quota_headers" || fail "quota breach status not 429: $(head -n1 "$quota_headers")"
grep -qi '^Retry-After: [0-9]' "$quota_headers" || fail "429 missing Retry-After header"
echo "$quota_body" | grep -q '"code": "quota_exhausted"' || fail "429 body not quota envelope: $quota_body"
echo "e2e_smoke: quota backpressure ok (429 + Retry-After)"

# Tenant listing reflects the rejection.
tenants=$(curl -fsS "$base/v1/tenants")
echo "$tenants" | grep -q '"name": "tiny"' || fail "tenant listing missing tiny: $tenants"
curl -fsS "$base/v1/tenants/tiny" | grep -q '"rejected": 1' || fail "tiny tenant did not record the rejection"

state=""
for _ in $(seq 1 100); do
    require_alive "while waiting for job $id"
    state=$(curl -fsS --max-time 5 "$base/v1/jobs/$id" | sed -n 's/.*"state": "\([a-z]*\)".*/\1/p' | head -n1)
    [[ "$state" == "completed" || "$state" == "failed" ]] && break
    sleep 0.1
done
[[ "$state" == "completed" ]] || fail "job state = '$state', want completed"
echo "e2e_smoke: job $id completed"

# Pagination: the v1 listing wraps jobs in an envelope.
curl -fsS "$base/v1/jobs?limit=10" | grep -q '"jobs"' || fail "v1 job listing not paginated"

# Error envelope: an unknown ID must return the uniform shape.
curl -sS "$base/v1/jobs/424242" | grep -q '"code": "not_found"' || fail "404 body not the error envelope"

metrics=$(curl -fsS "$base/v1/metrics")
echo "$metrics" | grep -q '"jobsCompleted": 1' || fail "metrics: $metrics"

# Prometheus exposition: every line must be a comment (# HELP / # TYPE) or a
# "name{labels} value" sample, and the family set must be rich enough to be
# worth scraping (>= 10 families, at least one histogram, and the
# per-tenant families carrying a tenant label).
prom=$(curl -fsS "$base/v1/metrics?format=prometheus")
bad=$(echo "$prom" | grep -Ev \
    -e '^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$' \
    -e '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$' \
    -e '^$' || true)
[[ -z "$bad" ]] || fail "malformed exposition lines: $bad"
families=$(echo "$prom" | grep -c '^# TYPE ') || true
[[ "$families" -ge 10 ]] || fail "exposition has $families families, want >= 10"
echo "$prom" | grep -q '^# TYPE [a-z_]* histogram' || fail "exposition has no histogram"
echo "$prom" | grep -q '^ssr_jobs_completed 1' || fail "exposition missing completed job"
echo "$prom" | grep -Eq '^ssr_tenant_[a-z_]*\{tenant="' || fail "exposition missing per-tenant labeled families"
echo "$prom" | grep -q '^ssr_tenant_jobs_rejected{tenant="tiny"} 1' || fail "tiny tenant rejection not in exposition"
echo "e2e_smoke: prometheus exposition ok ($families families, tenant labels present)"

# Node lifecycle admin: list nodes, drain one with a generous notice,
# watch it report draining with a deadline, then cancel the notice.
nodes=$(curl -fsS --max-time 5 "$base/v1/nodes")
echo "$nodes" | grep -q '"state": "up"' || fail "node listing has no up nodes: $nodes"
curl -fsS -X POST --max-time 5 "$base/v1/nodes/3/drain?noticeMs=60000" \
    | grep -q '"status": "draining"' || fail "drain request"
curl -fsS --max-time 5 "$base/v1/nodes" | grep -q '"state": "draining"' || fail "drained node not reported draining"
curl -fsS -X POST --max-time 5 "$base/v1/nodes/3/undrain" \
    | grep -q '"status": "up"' || fail "undrain request"
curl -fsS --max-time 5 "$base/v1/metrics" | grep -q '"nodeDrains": 1' || fail "metrics missing node drain count"
echo "e2e_smoke: node lifecycle admin ok (drain + undrain)"

# The audit stream records the run's reservation decisions as JSON lines.
curl -fsS "$base/v1/audit" | head -n1 | grep -q '"kind"' || fail "audit stream empty"
# The SSE stream never ends on its own; let curl's --max-time cut it.
events=$(curl -fs --max-time 2 "$base/v1/events?since=1" || true)
echo "$events" | grep -q 'job_done' || fail "event stream missing job_done"

# Legacy unversioned routes must keep working for one release, marked with
# a Deprecation header and serving the same data.
legacy_headers="$workdir/legacy_headers.txt"
curl -fsS -D "$legacy_headers" "$base/jobs/$id" | grep -q '"state": "completed"' || fail "legacy GET /jobs/{id}"
grep -qi '^Deprecation: true' "$legacy_headers" || fail "legacy route missing Deprecation header"
echo "e2e_smoke: legacy aliases ok (Deprecation header set)"

kill -TERM "$ssrd_pid"
rc=0
wait "$ssrd_pid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "exit code $rc after SIGTERM, want 0"
grep -q 'drained clean' "$workdir/ssrd.log" || fail "no clean-drain log line"
[[ -s "$workdir/run.csv" ]] || fail "trace file missing or empty"
lines=$(wc -l <"$workdir/run.csv")
[[ "$lines" -ge 7 ]] || fail "trace has $lines lines, want >= 7 (header + 6 attempts)"
ssrd_pid=""

# --- Trace soak: synthesize a cluster trace, replay it open-loop through
# the phased ssrload driver against a fresh daemon, and check the phase
# cutover fires and the measurement window records real percentiles.
echo "e2e_smoke: trace soak (gen_trace -> ssrload -trace)"
go build -o "$workdir/ssrload" ./cmd/ssrload
go run ./scripts/gen_trace.go -jobs 40 -rate 2 -seed 7 \
    -batch-parallelism 8 -prod-parallelism 4 -out "$workdir/trace.csv" 2>/dev/null
[[ -s "$workdir/trace.csv" ]] || fail "gen_trace produced no trace"

"$workdir/ssrd" -addr 127.0.0.1:0 -nodes 8 -slots 4 -mode ssr \
    -dilation 2000 -drain 5s \
    >"$workdir/ssrd.log" 2>&1 &
ssrd_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^ssrd: listening on \([^ ]*\).*/\1/p' "$workdir/ssrd.log")
    [[ -n "$addr" ]] && break
    require_alive "during soak startup"
    sleep 0.1
done
[[ -n "$addr" ]] || fail "soak daemon never reported its address"

soak_out=$("$workdir/ssrload" -addr "http://$addr" -trace "$workdir/trace.csv" \
    -iat replay -speedup 50 -phases 200ms/10s/60s \
    -classes prod=ml,batch=bulk \
    -out "$workdir/soak_results.csv" -json "$workdir/soak_report.json" \
    -poll 10ms -timeout 2m 2>&1) || fail "trace soak run: $soak_out"
echo "$soak_out" | grep -q 'trace phase warmup begins' || fail "soak missing warmup start: $soak_out"
echo "$soak_out" | grep -q 'phase cutover warmup -> measure' || fail "soak missing phase cutover: $soak_out"
echo "$soak_out" | grep -q '40 submitted' || fail "soak did not submit the full trace: $soak_out"
echo "$soak_out" | grep -q ' 0 failed' || fail "soak jobs failed: $soak_out"

# The measurement phase must have completions with nonzero latency
# percentiles (p50 > 0 implies p99 > 0 in the report's omitempty JSON).
grep -q '"phase": "measure"' "$workdir/soak_report.json" || fail "report missing measurement phase"
measure_p50=$(tr -d ' \n' <"$workdir/soak_report.json" \
    | grep -o '"phase":"measure"[^}]*' | grep -o '"p50Sec":[0-9.]*' | cut -d: -f2)
[[ -n "$measure_p50" && "$measure_p50" != "0" ]] || fail "measurement p50 missing or zero: $measure_p50"
results_lines=$(wc -l <"$workdir/soak_results.csv")
[[ "$results_lines" -eq 41 ]] || fail "soak results have $results_lines lines, want header + 40"
echo "e2e_smoke: trace soak ok (phase cutover + measure p50=${measure_p50}s, $((results_lines - 1)) result rows)"

kill -TERM "$ssrd_pid"
rc=0
wait "$ssrd_pid" || rc=$?
[[ "$rc" -eq 0 ]] || fail "soak daemon exit code $rc after SIGTERM, want 0"
ssrd_pid=""

echo "e2e_smoke: PASS"
