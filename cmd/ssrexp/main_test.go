package main

import (
	"os"
	"testing"
)

// silence routes the run's stdout to /dev/null for the duration of a test.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Errorf("close devnull: %v", err)
		}
	})
}

func TestRunSingleExperiment(t *testing.T) {
	silence(t)
	if err := run([]string{"-scale", "quick", "fig8"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSeveralExperiments(t *testing.T) {
	silence(t)
	if err := run([]string{"-scale", "quick", "fig1", "fig13"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunCaseInsensitiveNames(t *testing.T) {
	silence(t)
	if err := run([]string{"-scale", "quick", "FIG8"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestList(t *testing.T) {
	silence(t)
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run -list: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	silence(t)
	if err := run([]string{"nope", "fig8", "alsonope"}); err == nil {
		t.Error("unknown experiment names should error")
	}
}

func TestBadScale(t *testing.T) {
	silence(t)
	if err := run([]string{"-scale", "medium", "fig8"}); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestBadFlag(t *testing.T) {
	silence(t)
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
}
