package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ssr/internal/experiments"
)

// runCmd invokes run with captured stdout/stderr.
func runCmd(args ...string) (stdout, stderr string, err error) {
	var out, errw bytes.Buffer
	err = run(args, &out, &errw)
	return out.String(), errw.String(), err
}

func TestRunSingleExperiment(t *testing.T) {
	out, errw, err := runCmd("-scale", "quick", "fig8")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "alpha") {
		t.Errorf("table missing from stdout:\n%s", out)
	}
	if !strings.Contains(errw, "fig8 completed in") {
		t.Errorf("timing line missing from stderr:\n%s", errw)
	}
}

func TestRunSeveralExperiments(t *testing.T) {
	out, _, err := runCmd("-scale", "quick", "fig1", "fig13")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "kmeans") {
		t.Errorf("fig1 rows missing:\n%s", out)
	}
}

func TestRunCaseInsensitiveNames(t *testing.T) {
	if _, _, err := runCmd("-scale", "quick", "FIG8"); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunParallelMatchesSerialOutput(t *testing.T) {
	serial, _, err := runCmd("-scale", "quick", "-parallel", "1", "fig10", "fig8")
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	par, _, err := runCmd("-scale", "quick", "-parallel", "8", "fig10", "fig8")
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial != par {
		t.Errorf("parallel stdout differs from serial:\n--- serial\n%s\n--- parallel\n%s", serial, par)
	}
}

func TestRunJSON(t *testing.T) {
	out, _, err := runCmd("-scale", "quick", "-json", "fig8", "fig1")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var decoded []struct {
		Name   string `json:"name"`
		Result struct {
			Title   string `json:"title"`
			Columns []struct{ Name, Kind string }
			Rows    [][]any
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out)
	}
	if len(decoded) != 2 || decoded[0].Name != "fig8" || decoded[1].Name != "fig1" {
		t.Errorf("unexpected JSON shape: %+v", decoded)
	}
	if len(decoded[0].Result.Rows) == 0 || len(decoded[0].Result.Columns) == 0 {
		t.Error("fig8 result missing rows/columns in JSON output")
	}
}

func TestRunProgressOnStderr(t *testing.T) {
	out, errw, err := runCmd("-scale", "quick", "-progress", "fig10")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(errw, "fig10: 1/21") {
		t.Errorf("progress lines missing from stderr:\n%s", errw)
	}
	if strings.Contains(out, "1/21") {
		t.Error("progress lines leaked to stdout")
	}
}

func TestList(t *testing.T) {
	out, _, err := runCmd("-list")
	if err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range experiments.Names() {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing %q:\n%s", name, out)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	_, _, err := runCmd("nope", "fig8", "alsonope")
	if err == nil {
		t.Fatal("unknown experiment names should error")
	}
	for _, want := range []string{"alsonope", "nope", "faulttolerance"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error should mention %q (unknowns plus the registered set): %v", want, err)
		}
	}
}

func TestBadScale(t *testing.T) {
	if _, _, err := runCmd("-scale", "medium", "fig8"); err == nil {
		t.Error("unknown scale should error")
	}
}

func TestBadFlag(t *testing.T) {
	if _, _, err := runCmd("-definitely-not-a-flag"); err == nil {
		t.Error("bad flag should error")
	}
}

// TestRunJSONCellMetrics checks the per-cell scheduler-metrics dump that
// rides along in -json output: instrumented experiments carry one entry per
// cell with reservation counters, and the bytes are identical for any
// worker count (the metrics ride the virtual clock).
func TestRunJSONCellMetrics(t *testing.T) {
	serial, _, err := runCmd("-scale", "quick", "-json", "-parallel", "1", "mitcompare", "fig4")
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	par, _, err := runCmd("-scale", "quick", "-json", "-parallel", "8", "mitcompare", "fig4")
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial != par {
		t.Errorf("parallel -json output differs from serial:\n--- serial\n%s\n--- parallel\n%s", serial, par)
	}
	var decoded []struct {
		Name        string `json:"name"`
		CellMetrics []struct {
			Cell     string `json:"cell"`
			Families []struct {
				Name   string `json:"name"`
				Type   string `json:"type"`
				Series []struct {
					Value float64 `json:"value"`
				} `json:"series"`
			} `json:"families"`
		} `json:"cellMetrics"`
	}
	if err := json.Unmarshal([]byte(serial), &decoded); err != nil {
		t.Fatalf("-json output is not valid JSON: %v", err)
	}
	mit := decoded[0]
	if len(mit.CellMetrics) != 3 {
		t.Fatalf("mitcompare dumped %d cells, want one per strategy (3)", len(mit.CellMetrics))
	}
	for _, cm := range mit.CellMetrics {
		if !strings.HasPrefix(cm.Cell, "mitcompare/") {
			t.Errorf("unexpected cell key %q", cm.Cell)
		}
		reservations := 0.0
		for _, f := range cm.Families {
			if f.Name == "ssr_reservations_total" && len(f.Series) > 0 {
				reservations = f.Series[0].Value
			}
		}
		if reservations <= 0 {
			t.Errorf("cell %s: no reservations recorded under SSR", cm.Cell)
		}
	}
	if len(decoded[1].CellMetrics) == 0 {
		t.Error("fig4 dumped no cell metrics")
	}
}
