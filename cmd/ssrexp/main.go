// Command ssrexp regenerates the paper's evaluation figures on the
// simulator and prints their rows.
//
// Usage:
//
//	ssrexp [-scale quick|full] [-seed N] [-parallel N] [-json] [-progress] [-list] [exp...]
//
// With no experiment arguments it runs the complete registered set (see
// -list). Each experiment's independent cells (sweep points and
// replications) execute on -parallel workers; the output is byte-for-byte
// identical for every worker count. Tables print to stdout (-json switches
// to a structured JSON array); timing and progress go to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ssr/internal/experiments"
	"ssr/internal/runner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ssrexp:", err)
		os.Exit(1)
	}
}

// namedResult wraps one experiment's table for -json output, together with
// the scheduler-metrics dumps of its instrumented cells.
type namedResult struct {
	Name        string                    `json:"name"`
	Result      *experiments.Result       `json:"result"`
	CellMetrics []experiments.CellMetrics `json:"cellMetrics,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ssrexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scaleName = fs.String("scale", "full", "experiment scale: quick or full")
		seed      = fs.Int64("seed", 42, "random seed")
		parallel  = fs.Int("parallel", 0, "worker count for experiment cells (0 = GOMAXPROCS)")
		asJSON    = fs.Bool("json", false, "emit results as a JSON array instead of text tables")
		progress  = fs.Bool("progress", false, "report per-cell progress on stderr")
		list      = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	params := experiments.Params{Seed: *seed, Scale: scale}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-14s %s\n", e.Name(), e.Desc())
		}
		return nil
	}

	selected := fs.Args()
	if len(selected) == 0 {
		selected = experiments.Names()
	}
	var unknown []string
	for _, name := range selected {
		if _, ok := experiments.Lookup(name); !ok {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown experiments: %s (registered: %s)",
			strings.Join(unknown, ", "), strings.Join(experiments.Names(), ", "))
	}

	var results []namedResult
	for _, name := range selected {
		e, _ := experiments.Lookup(name)
		expParams := params
		if *asJSON {
			// Per-cell scheduler metrics ride along in the JSON output;
			// a fresh collector per experiment keeps the dumps separate.
			expParams.Obs = experiments.NewCollector()
		}
		opts := runner.Options{Parallel: *parallel}
		if *progress {
			opts.Progress = func(done, total int, key string) {
				fmt.Fprintf(stderr, "%s: %d/%d %s\n", e.Name(), done, total, key)
			}
		}
		start := time.Now()
		res, err := runner.Run(e, expParams, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		fmt.Fprintf(stderr, "(%s completed in %v at %s scale)\n",
			e.Name(), time.Since(start).Round(time.Millisecond), scale)
		if *asJSON {
			results = append(results, namedResult{
				Name: e.Name(), Result: res, CellMetrics: expParams.Obs.Snapshots(),
			})
			continue
		}
		fmt.Fprintln(stdout, res)
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(results)
	}
	return nil
}
