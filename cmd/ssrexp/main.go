// Command ssrexp regenerates the paper's evaluation figures on the
// simulator and prints their rows.
//
// Usage:
//
//	ssrexp [-scale quick|full] [-seed N] [-list] [fig...]
//
// With no figure arguments it runs the complete set. Figure names: fig1,
// fig4, fig5, fig6, fig8, fig10, fig12, fig13, fig14, fig15, fig16, fig17,
// bgimpact, mitcompare, faulttolerance.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ssr/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssrexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssrexp", flag.ContinueOnError)
	var (
		scaleName = fs.String("scale", "full", "experiment scale: quick or full")
		seed      = fs.Int64("seed", 42, "random seed")
		list      = fs.Bool("list", false, "list available experiments and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiments.Scale
	switch *scaleName {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}
	params := experiments.Params{Seed: *seed, Scale: scale}

	type exp struct {
		name string
		desc string
		run  func() (fmt.Stringer, error)
	}
	all := []exp{
		{name: "fig1", desc: "motivation: KMeans vs SVM, priority scheduling fails", run: func() (fmt.Stringer, error) {
			return experiments.Fig1(*seed)
		}},
		{name: "fig4", desc: "foreground slowdown vs contention level", run: func() (fmt.Stringer, error) {
			return experiments.Fig4(params)
		}},
		{name: "fig5", desc: "KMeans running tasks over time", run: func() (fmt.Stringer, error) {
			return experiments.Fig5(params)
		}},
		{name: "fig6", desc: "task slowdown without data locality", run: func() (fmt.Stringer, error) {
			return experiments.Fig6(*seed)
		}},
		{name: "fig8", desc: "analytic isolation/utilization trade-off (Eq. 4)", run: func() (fmt.Stringer, error) {
			return experiments.Fig8(), nil
		}},
		{name: "fig10", desc: "numerical straggler-mitigation speedup", run: func() (fmt.Stringer, error) {
			return experiments.Fig10(params)
		}},
		{name: "fig12", desc: "slowdown with and without SSR", run: func() (fmt.Stringer, error) {
			return experiments.Fig12(params)
		}},
		{name: "fig13", desc: "fair-scheduler allocations over time", run: func() (fmt.Stringer, error) {
			return experiments.Fig13(*seed)
		}},
		{name: "fig14", desc: "measured isolation/utilization trade-off", run: func() (fmt.Stringer, error) {
			return experiments.Fig14(params)
		}},
		{name: "fig15", desc: "large-scale simulation slowdowns", run: func() (fmt.Stringer, error) {
			return experiments.Fig15(params)
		}},
		{name: "fig16", desc: "SQL slowdown vs pre-reservation threshold", run: func() (fmt.Stringer, error) {
			return experiments.Fig16(params)
		}},
		{name: "fig17", desc: "JCT reduction from straggler mitigation", run: func() (fmt.Stringer, error) {
			return experiments.Fig17(params)
		}},
		{name: "bgimpact", desc: "impact of SSR on background jobs", run: func() (fmt.Stringer, error) {
			return experiments.BackgroundImpact(params)
		}},
		{name: "mitcompare", desc: "reserved-slot mitigation vs status-quo speculation", run: func() (fmt.Stringer, error) {
			return experiments.MitigationComparison(params)
		}},
		{name: "faulttolerance", desc: "fg slowdown vs node MTTF with and without SSR", run: func() (fmt.Stringer, error) {
			return experiments.FaultTolerance(params)
		}},
	}
	byName := make(map[string]exp, len(all))
	for _, e := range all {
		byName[e.name] = e
	}

	if *list {
		for _, e := range all {
			fmt.Printf("%-9s %s\n", e.name, e.desc)
		}
		return nil
	}

	selected := fs.Args()
	if len(selected) == 0 {
		for _, e := range all {
			selected = append(selected, e.name)
		}
	}
	var unknown []string
	for _, name := range selected {
		if _, ok := byName[strings.ToLower(name)]; !ok {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown experiments: %s", strings.Join(unknown, ", "))
	}

	for _, name := range selected {
		e := byName[strings.ToLower(name)]
		start := time.Now()
		res, err := e.run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(res)
		fmt.Printf("(%s completed in %v at %s scale)\n\n", e.name, time.Since(start).Round(time.Millisecond), scale)
	}
	return nil
}
