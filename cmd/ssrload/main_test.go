package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/service"
	"ssr/internal/shard"
)

// silence routes stdout to /dev/null for the duration of a test.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Errorf("close devnull: %v", err)
		}
	})
}

// capture runs fn with stdout redirected to a pipe and returns its output.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Errorf("close pipe: %v", err)
	}
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, out)
	}
	return out
}

// startService spins an in-process daemon handler for the generator to hit.
func startService(t *testing.T, dilation float64) string {
	t.Helper()
	svc, err := service.New(service.Config{
		Nodes:        8,
		SlotsPerNode: 2,
		Dilation:     dilation,
		Driver: driver.Options{
			Mode: driver.ModeSSR,
			SSR:  core.Config{Enabled: true, IsolationP: 0.9, Alpha: 1.6, PreReserveThreshold: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestOpenLoopHundredJobs is the load-generator acceptance run: 100 jobs
// submitted open loop against a dilated service, all completing.
func TestOpenLoopHundredJobs(t *testing.T) {
	url := startService(t, 500)
	out := capture(t, func() error {
		return run([]string{"-addr", url, "-jobs", "100", "-rate", "400",
			"-suite", "tiny", "-poll", "5ms", "-timeout", "2m"})
	})
	if !strings.Contains(out, "100 completed, 0 failed, 0 refused") {
		t.Errorf("unexpected summary:\n%s", out)
	}
	if !strings.Contains(out, "client latency") || !strings.Contains(out, "utilization") {
		t.Errorf("missing report sections:\n%s", out)
	}
}

func TestClosedLoop(t *testing.T) {
	url := startService(t, 500)
	out := capture(t, func() error {
		return run([]string{"-addr", url, "-jobs", "30", "-concurrency", "6",
			"-suite", "tiny", "-poll", "5ms", "-timeout", "2m"})
	})
	if !strings.Contains(out, "30 completed, 0 failed") {
		t.Errorf("unexpected summary:\n%s", out)
	}
	if !strings.Contains(out, "closed loop") {
		t.Errorf("missing mode label:\n%s", out)
	}
}

func TestSuites(t *testing.T) {
	// The ml/sql suites carry tens of virtual minutes of work; high
	// dilation keeps the real-time cost tiny.
	url := startService(t, 20000)
	silence(t)
	for _, suite := range []string{"ml", "sql"} {
		if err := run([]string{"-addr", url, "-jobs", "3", "-concurrency", "3",
			"-suite", suite, "-poll", "5ms", "-timeout", "2m"}); err != nil {
			t.Errorf("suite %s: %v", suite, err)
		}
	}
}

// TestJSONReport drives a closed loop against a sharded service with -json
// and checks the machine-readable report: counts, throughput, latency
// percentiles, and the embedded server metrics with the shard breakdown.
func TestJSONReport(t *testing.T) {
	svc, err := service.New(service.Config{
		Nodes:        8,
		SlotsPerNode: 2,
		Shards:       2,
		Router:       shard.LeastLoadedRouter{},
		Dilation:     500,
		Driver: driver.Options{
			Mode: driver.ModeSSR,
			SSR:  core.Config{Enabled: true, IsolationP: 0.9, Alpha: 1.6, PreReserveThreshold: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(ts.Close)

	path := filepath.Join(t.TempDir(), "report.json")
	capture(t, func() error {
		return run([]string{"-addr", ts.URL, "-jobs", "20", "-concurrency", "5",
			"-suite", "tiny", "-poll", "5ms", "-timeout", "2m", "-json", path})
	})

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, data)
	}
	if rep.Suite != "tiny" || rep.Mode != "closed" || rep.Concurrency != 5 {
		t.Errorf("run shape = suite %q, mode %q, conc %d", rep.Suite, rep.Mode, rep.Concurrency)
	}
	if rep.Jobs != 20 || rep.Completed != 20 || rep.Failed != 0 || rep.Refused != 0 {
		t.Errorf("counts = %d jobs / %d completed / %d failed / %d refused",
			rep.Jobs, rep.Completed, rep.Failed, rep.Refused)
	}
	if rep.WallSec <= 0 || rep.ThroughputJobsPerSec <= 0 {
		t.Errorf("wall %.3fs, throughput %.3f jobs/sec", rep.WallSec, rep.ThroughputJobsPerSec)
	}
	if rep.Latency == nil {
		t.Fatal("report missing latency summary")
	}
	if rep.Latency.MeanSec <= 0 || rep.Latency.P99Sec < rep.Latency.P50Sec ||
		rep.Latency.MaxSec < rep.Latency.P99Sec {
		t.Errorf("latency summary inconsistent: %+v", *rep.Latency)
	}
	h := rep.Latency.Histogram
	if h == nil {
		t.Fatal("latency summary missing histogram")
	}
	if h.Count != 20 {
		t.Errorf("histogram count = %d, want every completed job (20)", h.Count)
	}
	if len(h.CumCounts) != len(h.Bounds)+1 {
		t.Errorf("histogram has %d cumulative counts for %d bounds", len(h.CumCounts), len(h.Bounds))
	}
	if inf := h.CumCounts[len(h.CumCounts)-1]; inf != h.Count {
		t.Errorf("+Inf bucket = %d, want count %d", inf, h.Count)
	}
	if h.Sum <= 0 {
		t.Errorf("histogram sum = %v, want > 0", h.Sum)
	}
	if rep.Server == nil {
		t.Fatal("report missing server metrics")
	}
	if rep.Server.JobsCompleted != 20 || rep.Server.NumShards != 2 || len(rep.Server.Shards) != 2 {
		t.Errorf("server metrics = %d completed, %d shards (%d detailed)",
			rep.Server.JobsCompleted, rep.Server.NumShards, len(rep.Server.Shards))
	}

	// "-" writes the report to stdout instead.
	out := capture(t, func() error {
		return run([]string{"-addr", ts.URL, "-jobs", "4", "-concurrency", "2",
			"-suite", "tiny", "-poll", "5ms", "-timeout", "2m", "-json", "-"})
	})
	if !strings.Contains(out, `"throughputJobsPerSec"`) {
		t.Errorf("stdout report missing JSON fields:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	silence(t)
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
	if err := run([]string{"-jobs", "0"}); err == nil {
		t.Error("zero jobs should error")
	}
	if err := run([]string{"-suite", "bogus"}); err == nil {
		t.Error("bad suite should error")
	}
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-jobs", "1", "-timeout", "2s"}); err == nil {
		t.Error("unreachable daemon should error")
	}
}
