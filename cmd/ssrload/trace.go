package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"ssr/internal/service"
	"ssr/internal/stats"
	"ssr/internal/traceload"
)

// Trace mode turns ssrload into the front half of the traceload pipeline:
// a cluster trace CSV is streamed (never materialized), re-timed by an
// arrival process (replay / fitted / poisson), and submitted open loop
// against a running ssrd through warmup → measurement → drain phases with
// per-phase stats cutover. Per-job results stream to -out incrementally,
// so a million-job soak holds neither the trace nor its results in memory.

// traceOptions carries the parsed trace-mode flags.
type traceOptions struct {
	addr      string
	path      string
	iat       string
	speedup   float64
	rate      float64
	phases    string
	fitPrefix int
	classes   string
	inflight  int
	out       string
	format    string
	jobs      int // 0 = unbounded (whole trace / submission window)
	poll      time.Duration
	timeout   time.Duration
	seed      int64
	jsonOut   string
}

// parseClassMap parses "prod=ml,batch=bulk" into class→tenant.
func parseClassMap(s string) (map[string]string, error) {
	m := make(map[string]string)
	s = strings.TrimSpace(s)
	if s == "" {
		return m, nil
	}
	for _, pair := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(pair, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("class map entry %q must be class=tenant", pair)
		}
		if _, dup := m[k]; dup {
			return nil, fmt.Errorf("class %q mapped twice", k)
		}
		m[k] = v
	}
	return m, nil
}

// buildArrivals wires the trace reader to the chosen arrival process. The
// returned closer owns the trace file.
func buildArrivals(opts traceOptions) (traceload.ArrivalSource, io.Closer, error) {
	f, err := os.Open(opts.path)
	if err != nil {
		return nil, nil, err
	}
	rd, err := traceload.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var src traceload.ArrivalSource
	switch opts.iat {
	case "replay":
		src, err = traceload.Replay(rd, opts.speedup)
	case "poisson":
		if opts.rate <= 0 {
			err = fmt.Errorf("-iat poisson needs a positive -rate")
		} else {
			src, err = traceload.Poisson(rd, opts.rate, stats.Stream(opts.seed, "ssrload-trace-poisson"))
		}
	case "fitted":
		// Fit on a prefix, then generate unboundedly from the model: the
		// trace is no longer consulted, so run length is decoupled from
		// trace length.
		fitter := traceload.NewFitter()
		var model *traceload.Model
		model, err = fitter.FitPrefix(rd, opts.fitPrefix)
		if err == nil {
			for _, cm := range model.Classes {
				fmt.Printf("ssrload: fitted %s\n", cm)
			}
			src, err = traceload.Fitted(model, opts.seed, opts.jobs)
		}
	default:
		err = fmt.Errorf("unknown -iat %q (replay, fitted, poisson)", opts.iat)
	}
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return src, f, nil
}

func runTrace(opts traceOptions) error {
	var plan traceload.PhasePlan
	if opts.phases != "" {
		var err error
		if plan, err = traceload.ParsePhases(opts.phases); err != nil {
			return err
		}
	}
	if opts.jobs < 0 {
		return fmt.Errorf("-jobs %d must be >= 0 in trace mode (0 = unbounded)", opts.jobs)
	}
	if opts.iat == "fitted" && opts.jobs == 0 && plan.SubmitWindow() == 0 {
		return fmt.Errorf("-iat fitted generates forever: bound the run with -jobs or -phases")
	}
	classMap, err := parseClassMap(opts.classes)
	if err != nil {
		return err
	}
	src, closer, err := buildArrivals(opts)
	if err != nil {
		return err
	}
	defer closer.Close()

	var results *traceload.ResultWriter
	if opts.out != "" {
		f, err := os.Create(opts.out)
		if err != nil {
			return fmt.Errorf("create -out: %w", err)
		}
		defer f.Close()
		if results, err = traceload.NewResultWriter(f, opts.format, 0); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()
	cli := service.NewClient(opts.addr)
	if _, err := cli.Metrics(ctx); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", opts.addr, err)
	}

	ps := traceload.NewPhaseStats()
	writeResult := func(rec traceload.ResultRecord) {
		if results == nil {
			return
		}
		if err := results.Write(rec); err != nil {
			fmt.Fprintln(os.Stderr, "ssrload:", err)
		}
	}

	var (
		wg        sync.WaitGroup
		submitted int
		shed      int
		sem       chan struct{}
	)
	if opts.inflight > 0 {
		sem = make(chan struct{}, opts.inflight)
	}
	launch := func(spec service.JobSpec, arr traceload.Arrival, phase traceload.Phase, tenant string) {
		defer wg.Done()
		if sem != nil {
			defer func() { <-sem }()
		}
		start := time.Now()
		st, err := cli.Submit(ctx, spec)
		for attempt := 0; err != nil && service.IsQuotaExhausted(err) && attempt < 8; attempt++ {
			ps.Throttled(phase)
			backoff := service.RetryAfter(err)
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
			}
			st, err = cli.Submit(ctx, spec)
		}
		rec := traceload.ResultRecord{
			Job: arr.Rec.ID, Name: arr.Rec.Name, Class: arr.Rec.Class,
			Tenant: tenant, Phase: phase.String(), SubmitSec: arr.At.Seconds(),
		}
		if err != nil {
			ps.Refused(phase)
			rec.State = "refused"
			writeResult(rec)
			return
		}
		final, err := cli.WaitJob(ctx, st.ID, opts.poll)
		rec.LatencySec = time.Since(start).Seconds()
		if err != nil || final.State != service.StateCompleted {
			ps.Failed(phase)
			rec.State = "failed"
		} else {
			ps.Completed(phase, rec.LatencySec)
			rec.State = "completed"
		}
		writeResult(rec)
	}

	// Submission loop: walk arrivals on the wall clock, cutting phases over
	// as the run offset crosses the plan's boundaries.
	start := time.Now()
	cur := plan.PhaseAt(0)
	fmt.Printf("ssrload: trace phase %s begins\n", cur)
	window := plan.SubmitWindow()
submitLoop:
	for opts.jobs == 0 || submitted+shed < opts.jobs {
		arr, err := src.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if wait := arr.At - time.Since(start); wait > 0 {
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return fmt.Errorf("deadline passed mid-submission: %w", ctx.Err())
			}
		}
		elapsed := time.Since(start)
		if window > 0 && elapsed >= window {
			break
		}
		phase := plan.PhaseAt(elapsed)
		if phase != cur {
			fmt.Printf("ssrload: trace phase cutover %s -> %s at %.1fs (%d submitted)\n",
				cur, phase, elapsed.Seconds(), submitted)
			cur = phase
		}
		tenant := classMap[arr.Rec.Class]
		job, err := arr.Rec.Build(0, tenant)
		if err != nil {
			return fmt.Errorf("trace job %d: %w", arr.Rec.ID, err)
		}
		spec := service.SpecOf(job)
		if sem != nil {
			select {
			case sem <- struct{}{}:
			default:
				// In-flight cap reached: shed the arrival instead of letting
				// the open loop pile up unbounded client state.
				shed++
				ps.Shed(phase)
				writeResult(traceload.ResultRecord{
					Job: arr.Rec.ID, Name: arr.Rec.Name, Class: arr.Rec.Class,
					Tenant: tenant, Phase: phase.String(), SubmitSec: arr.At.Seconds(),
					State: "shed",
				})
				continue submitLoop
			}
		}
		submitted++
		ps.Submitted(phase)
		wg.Add(1)
		go launch(spec, arr, phase, tenant)
	}

	// Drain: submissions stop; wait for in-flight jobs, bounded by the
	// plan's drain window when one is set.
	if cur != traceload.PhaseDrain && (plan.Enabled() || plan.Drain > 0) {
		fmt.Printf("ssrload: trace phase cutover %s -> drain at %.1fs (%d submitted)\n",
			cur, time.Since(start).Seconds(), submitted)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var drainExpiry <-chan time.Time
	if plan.Drain > 0 {
		drainExpiry = time.After(plan.Drain)
	}
	select {
	case <-done:
	case <-drainExpiry:
		fmt.Println("ssrload: drain window expired with jobs still in flight")
	case <-ctx.Done():
		fmt.Println("ssrload: deadline passed while draining")
	}
	elapsed := time.Since(start)

	reports := ps.Snapshot()
	var completed, failed, refused, throttled int
	for _, pr := range reports {
		completed += pr.Completed
		failed += pr.Failed
		refused += pr.Refused
		throttled += pr.Throttled
		line := fmt.Sprintf("ssrload: trace phase %s: submitted=%d completed=%d", pr.Phase, pr.Submitted, pr.Completed)
		if pr.Failed+pr.Refused+pr.Throttled+pr.Shed > 0 {
			line += fmt.Sprintf(" failed=%d refused=%d throttled=%d shed=%d", pr.Failed, pr.Refused, pr.Throttled, pr.Shed)
		}
		if pr.Completed > 0 {
			line += fmt.Sprintf(" latency p50=%.3fs p90=%.3fs p99=%.3fs max=%.3fs", pr.P50Sec, pr.P90Sec, pr.P99Sec, pr.MaxSec)
		}
		fmt.Println(line)
	}
	fmt.Printf("ssrload: trace %s via %s: %d submitted, %d completed, %d failed, %d refused, %d shed in %v (%.1f jobs/sec)\n",
		opts.path, opts.iat, submitted, completed, failed, refused, shed,
		elapsed.Round(time.Millisecond), float64(completed+failed)/elapsed.Seconds())

	rep := report{
		Suite:                "trace",
		Mode:                 "trace",
		Trace:                opts.path,
		IATMode:              opts.iat,
		Jobs:                 submitted,
		Completed:            completed,
		Failed:               failed,
		Refused:              refused,
		Throttled:            throttled,
		Shed:                 shed,
		WallSec:              elapsed.Seconds(),
		ThroughputJobsPerSec: float64(completed+failed) / elapsed.Seconds(),
		Phases:               reports,
	}
	if opts.iat == "replay" {
		rep.SpeedupX = opts.speedup
	}
	if opts.iat == "poisson" {
		rep.RateJobsPerSec = opts.rate
	}
	attachServerMetrics(ctx, cli, &rep)
	if results != nil {
		if err := results.Flush(); err != nil {
			return err
		}
		fmt.Printf("ssrload: streamed %d results to %s\n", results.Count(), opts.out)
	}
	if opts.jsonOut != "" {
		if err := writeReport(rep, opts.jsonOut); err != nil {
			return fmt.Errorf("write -json report: %w", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d trace jobs did not complete", failed, submitted)
	}
	return nil
}
