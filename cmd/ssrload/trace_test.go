package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssr/internal/traceload"
	"ssr/internal/workload"
)

// genTestTrace writes a small synthetic cluster trace and returns its path.
func genTestTrace(t *testing.T, jobs int) string {
	t.Helper()
	cfg := traceload.DefaultGen()
	cfg.Jobs = jobs
	cfg.RatePerSec = 2
	cfg.Batch = workload.DefaultBackground()
	cfg.Batch.MaxParallelism = 8
	cfg.ProdParallelism = 4
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := traceload.Generate(f, cfg, 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceReplayPhased is the trace-mode acceptance run: a generated
// cluster trace replayed at high speedup through warmup/measure/drain
// phases, with streaming results and a JSON report carrying per-phase
// percentiles.
func TestTraceReplayPhased(t *testing.T) {
	url := startService(t, 20000)
	trace := genTestTrace(t, 60)
	results := filepath.Join(t.TempDir(), "results.csv")
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	out := capture(t, func() error {
		return run([]string{"-addr", url, "-trace", trace, "-iat", "replay",
			"-speedup", "50", "-phases", "150ms/5s/60s",
			"-classes", "prod=ml,batch=bulk",
			"-out", results, "-json", jsonPath,
			"-poll", "5ms", "-timeout", "2m"})
	})
	if !strings.Contains(out, "trace phase warmup begins") {
		t.Errorf("missing warmup start:\n%s", out)
	}
	if !strings.Contains(out, "phase cutover warmup -> measure") {
		t.Errorf("missing measure cutover:\n%s", out)
	}
	if !strings.Contains(out, "60 submitted") || !strings.Contains(out, "0 failed") {
		t.Errorf("unexpected summary:\n%s", out)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Mode != "trace" || rep.IATMode != "replay" || rep.SpeedupX != 50 {
		t.Errorf("report shape: mode=%q iat=%q speedup=%v", rep.Mode, rep.IATMode, rep.SpeedupX)
	}
	if rep.Jobs != 60 || rep.Completed != 60 || rep.Failed != 0 {
		t.Errorf("counts: %d jobs / %d completed / %d failed", rep.Jobs, rep.Completed, rep.Failed)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("report missing phase breakdown")
	}
	var measure *traceload.PhaseReport
	for i := range rep.Phases {
		if rep.Phases[i].Phase == "measure" {
			measure = &rep.Phases[i]
		}
	}
	if measure == nil {
		t.Fatalf("no measurement phase in %+v", rep.Phases)
	}
	if measure.Completed == 0 || measure.P50Sec <= 0 || measure.P99Sec < measure.P50Sec {
		t.Errorf("measurement percentiles: %+v", *measure)
	}

	// Streaming results: header plus one terminal row per job.
	res, err := os.ReadFile(results)
	if err != nil {
		t.Fatalf("results not written: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(res)), "\n")
	if len(lines) != 61 {
		t.Errorf("results have %d lines, want header + 60", len(lines))
	}
	if !strings.HasPrefix(lines[0], "job,name,class,tenant,phase,") {
		t.Errorf("results header = %q", lines[0])
	}
	var sawTenant bool
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, ",completed") {
			t.Errorf("non-completed result row: %q", l)
		}
		if strings.Contains(l, ",bulk,") || strings.Contains(l, ",ml,") {
			sawTenant = true
		}
	}
	if !sawTenant {
		t.Error("class map not applied to result rows")
	}
}

// TestTraceFitted fits a model on the trace prefix and generates a bounded
// synthetic run from it.
func TestTraceFitted(t *testing.T) {
	url := startService(t, 20000)
	trace := genTestTrace(t, 80)
	out := capture(t, func() error {
		return run([]string{"-addr", url, "-trace", trace, "-iat", "fitted",
			"-fit-prefix", "80", "-jobs", "25", "-speedup", "1",
			"-poll", "5ms", "-timeout", "2m"})
	})
	if !strings.Contains(out, "ssrload: fitted batch:") {
		t.Errorf("missing fitted model summary:\n%s", out)
	}
	if !strings.Contains(out, "25 submitted") {
		t.Errorf("fitted run not bounded by -jobs:\n%s", out)
	}
	if !strings.Contains(out, "0 failed") {
		t.Errorf("fitted jobs failed:\n%s", out)
	}
}

func TestTraceModeErrors(t *testing.T) {
	silence(t)
	trace := genTestTrace(t, 5)
	cases := [][]string{
		{"-trace", "/nonexistent/trace.csv"},
		{"-trace", trace, "-iat", "warp"},
		{"-trace", trace, "-iat", "poisson"},                           // needs -rate
		{"-trace", trace, "-iat", "replay", "-speedup", "0"},           // bad speedup
		{"-trace", trace, "-phases", "nope"},                           // bad phase spec
		{"-trace", trace, "-iat", "fitted", "-jobs", "0"},              // unbounded fitted
		{"-trace", trace, "-classes", "prodml"},                        // bad class map
		{"-trace", trace, "-classes", "prod=a,prod=b"},                 // dup class
		{"-trace", trace, "-jobs", "-1"},                               // negative jobs
		{"-trace", trace, "-addr", "http://127.0.0.1:1", "-jobs", "1"}, // unreachable
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseClassMap(t *testing.T) {
	m, err := parseClassMap(" prod = ml , batch = bulk ")
	if err != nil {
		t.Fatal(err)
	}
	if m["prod"] != "ml" || m["batch"] != "bulk" {
		t.Errorf("map = %v", m)
	}
	if m, err := parseClassMap(""); err != nil || len(m) != 0 {
		t.Errorf("empty map: %v, %v", m, err)
	}
}
