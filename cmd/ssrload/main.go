// Command ssrload drives a running ssrd daemon with synthetic workloads
// and reports client-side completion latencies.
//
// Two shapes of load:
//
//   - Open loop (-rate > 0): jobs arrive at the target rate with
//     exponential interarrival gaps, regardless of how fast the service
//     finishes them — the paper's arrival-process setting.
//   - Closed loop (-rate 0): -concurrency workers each keep exactly one
//     job in flight, submitting the next as soon as the last completes.
//
// With -tenants N, jobs are spread round-robin over tenants t0..tN-1; 429
// quota rejections are retried after the server's Retry-After advice (a
// bounded number of times) and counted separately as "throttled".
//
// Example:
//
//	ssrload -addr http://127.0.0.1:8347 -jobs 200 -rate 20 -suite tiny
//	ssrload -jobs 100 -tenants 4 -concurrency 16
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"ssr/internal/dag"
	"ssr/internal/obs"
	"ssr/internal/service"
	"ssr/internal/stats"
	"ssr/internal/traceload"
	"ssr/internal/workload"
)

// latencySummary is the client-observed latency section of the -json report.
// Percentiles come from the raw sample; Histogram is the same sample binned
// into obs.LatencyBuckets, so reports from separate runs (or separate load
// generators) can be merged bucket-wise.
type latencySummary struct {
	MeanSec   float64                `json:"meanSec"`
	P50Sec    float64                `json:"p50Sec"`
	P90Sec    float64                `json:"p90Sec"`
	P99Sec    float64                `json:"p99Sec"`
	MaxSec    float64                `json:"maxSec"`
	Histogram *obs.HistogramSnapshot `json:"histogram,omitempty"`
}

// report is the machine-readable run summary written by -json: the client's
// view of the run (counts, wall time, throughput, latency percentiles) plus
// the server's own /metrics snapshot taken after the last job.
type report struct {
	Suite                string                 `json:"suite"`
	Mode                 string                 `json:"mode"` // "open", "closed" or "trace"
	RateJobsPerSec       float64                `json:"rateJobsPerSec,omitempty"`
	Concurrency          int                    `json:"concurrency,omitempty"`
	Tenants              int                    `json:"tenants,omitempty"`
	Jobs                 int                    `json:"jobs"`
	Completed            int                    `json:"completed"`
	Failed               int                    `json:"failed"`
	Refused              int                    `json:"refused"`
	Throttled            int                    `json:"throttled"`
	Shed                 int                    `json:"shed,omitempty"`
	WallSec              float64                `json:"wallSec"`
	ThroughputJobsPerSec float64                `json:"throughputJobsPerSec"`
	Latency              *latencySummary        `json:"latencySeconds,omitempty"`
	Server               *service.MetricsStatus `json:"server,omitempty"`
	// Trace-replay runs (-trace) carry the trace provenance and per-phase
	// stats instead of a single latency summary.
	Trace    string                  `json:"trace,omitempty"`
	IATMode  string                  `json:"iat,omitempty"`
	SpeedupX float64                 `json:"speedup,omitempty"`
	Phases   []traceload.PhaseReport `json:"phases,omitempty"`
	// Node-churn counters lifted out of Server for easy comparison across
	// runs: attempts preempted by drains, reservations migrated to
	// surviving slots, and reservations re-reserved through the Eq. 3
	// pre-reservation machinery after their slot drained away.
	Preempted  int `json:"preempted,omitempty"`
	Migrated   int `json:"migrated,omitempty"`
	Rereserved int `json:"rereserved,omitempty"`
}

// writeReport marshals the report to path ("-" = stdout).
func writeReport(rep report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssrload:", err)
		os.Exit(1)
	}
}

// buildSpecs synthesizes n job specs for the chosen suite.
func buildSpecs(suite string, n int, prio int, scale float64, seed int64) ([]service.JobSpec, error) {
	specs := make([]service.JobSpec, 0, n)
	switch suite {
	case "tiny":
		// Small two-phase workflows with jittered task durations: the
		// shape of the paper's foreground queries, sized so hundreds
		// drain quickly under dilation.
		rng := stats.Stream(seed, "ssrload-tiny")
		for i := 0; i < n; i++ {
			jitter := func(ms float64) float64 { return ms * scale * (0.5 + rng.Float64()) }
			specs = append(specs, service.JobSpec{
				Name:     fmt.Sprintf("tiny-%d", i),
				Priority: prio,
				Phases: []service.PhaseSpec{
					{DurationsMs: []float64{jitter(120), jitter(120), jitter(120)}},
					{DurationsMs: []float64{jitter(60), jitter(60)}, Deps: []int{0}},
				},
			})
		}
	case "ml":
		suiteSpecs := workload.MLSuite()
		for i := 0; i < n; i++ {
			spec := suiteSpecs[i%len(suiteSpecs)]
			job, err := spec.Build(dag.JobID(i+1), dag.Priority(prio), 0,
				stats.SubStream(seed, "ssrload-ml", i))
			if err != nil {
				return nil, err
			}
			specs = append(specs, service.SpecOf(job))
		}
	case "sql":
		queries := workload.SQLQueries(1)
		for i := 0; i < n; i++ {
			q := queries[i%len(queries)]
			job, err := q.Build(dag.JobID(i+1), dag.Priority(prio), 0,
				stats.SubStream(seed, "ssrload-sql", i))
			if err != nil {
				return nil, err
			}
			specs = append(specs, service.SpecOf(job))
		}
	default:
		return nil, fmt.Errorf("unknown suite %q (tiny, ml, sql)", suite)
	}
	return specs, nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssrload", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "http://127.0.0.1:8347", "ssrd base URL")
		jobs    = fs.Int("jobs", 100, "number of jobs to submit")
		rate    = fs.Float64("rate", 0, "open-loop arrival rate in jobs/sec (0 = closed loop)")
		conc    = fs.Int("concurrency", 8, "closed-loop in-flight jobs")
		suite   = fs.String("suite", "tiny", "workload suite: tiny, ml, sql")
		scale   = fs.Float64("scale", 1.0, "task duration scale for the tiny suite")
		prio    = fs.Int("prio", 5, "job priority")
		poll    = fs.Duration("poll", 20*time.Millisecond, "completion poll interval")
		timeout = fs.Duration("timeout", 5*time.Minute, "overall deadline")
		seed    = fs.Int64("seed", 42, "random seed (durations and interarrivals)")
		tenants = fs.Int("tenants", 0, "spread jobs round-robin over N tenants t0..tN-1 (0 = default tenant)")
		jsonOut = fs.String("json", "", `write a machine-readable JSON report to this file ("-" = stdout)`)

		// Trace-replay mode (-trace): sustained open-loop runs fed by a
		// cluster trace instead of a synthetic suite.
		trace     = fs.String("trace", "", "cluster trace CSV to replay (switches to trace mode)")
		iat       = fs.String("iat", "replay", "trace arrival process: replay, fitted or poisson")
		speedup   = fs.Float64("speedup", 1, "replay-mode arrival compression factor (2 = twice as fast)")
		phases    = fs.String("phases", "", `phased run "warmup/measure[/drain]", e.g. "30s/2m/30s" (empty = single unbounded phase)`)
		fitPrefix = fs.Int("fit-prefix", 1000, "fitted mode: trace jobs to fit the model on")
		classes   = fs.String("classes", "", `class→tenant map, e.g. "prod=ml,batch=bulk" (empty = no tenant)`)
		inflight  = fs.Int("inflight", 0, "trace mode: shed arrivals beyond this many in-flight jobs (0 = unlimited)")
		out       = fs.String("out", "", "trace mode: stream per-job results to this file")
		format    = fs.String("format", "csv", "result stream format: csv or jsonl")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trace != "" {
		return runTrace(traceOptions{
			addr: *addr, path: *trace, iat: *iat, speedup: *speedup,
			rate: *rate, phases: *phases, fitPrefix: *fitPrefix,
			classes: *classes, inflight: *inflight, out: *out, format: *format,
			jobs: *jobs, poll: *poll, timeout: *timeout, seed: *seed,
			jsonOut: *jsonOut,
		})
	}
	if *jobs <= 0 {
		return fmt.Errorf("need a positive -jobs, got %d", *jobs)
	}
	if *conc <= 0 {
		return fmt.Errorf("need a positive -concurrency, got %d", *conc)
	}
	specs, err := buildSpecs(*suite, *jobs, *prio, *scale, *seed)
	if err != nil {
		return err
	}
	if *tenants > 0 {
		for i := range specs {
			specs[i].Tenant = fmt.Sprintf("t%d", i%*tenants)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	cli := service.NewClient(*addr)
	if _, err := cli.Metrics(ctx); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", *addr, err)
	}

	var (
		mu        sync.Mutex
		latencies []float64 // seconds, submit -> terminal, client-observed
		completed int
		failed    int
		refused   int
		throttled int
	)
	latHist := obs.NewHistogram(obs.LatencyBuckets)
	var wg sync.WaitGroup
	launch := func(spec service.JobSpec) {
		defer wg.Done()
		start := time.Now()
		st, err := cli.Submit(ctx, spec)
		// Quota backpressure: honor the server's Retry-After advice for a
		// bounded number of attempts before giving the job up as refused.
		for attempt := 0; err != nil && service.IsQuotaExhausted(err) && attempt < 8; attempt++ {
			mu.Lock()
			throttled++
			mu.Unlock()
			backoff := service.RetryAfter(err)
			if backoff <= 0 {
				backoff = 100 * time.Millisecond
			}
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				break
			}
			st, err = cli.Submit(ctx, spec)
		}
		if err != nil {
			mu.Lock()
			refused++
			mu.Unlock()
			return
		}
		final, err := cli.WaitJob(ctx, st.ID, *poll)
		elapsed := time.Since(start).Seconds()
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err != nil || final.State != service.StateCompleted:
			failed++
		default:
			completed++
			latencies = append(latencies, elapsed)
			latHist.Observe(elapsed)
		}
	}

	wall := time.Now()
	if *rate > 0 {
		// Open loop: exponential interarrival gaps at the target rate. The
		// arrival stream is labeled so it stays independent of the
		// duration-jitter streams however the flag set evolves.
		arrivals := stats.Stream(*seed, "ssrload-arrivals")
		for _, spec := range specs {
			wg.Add(1)
			go launch(spec)
			gap := time.Duration(arrivals.ExpFloat64() / *rate * float64(time.Second))
			select {
			case <-time.After(gap):
			case <-ctx.Done():
				return fmt.Errorf("deadline passed mid-submission: %w", ctx.Err())
			}
		}
	} else {
		// Closed loop: a fixed number of jobs in flight at all times.
		work := make(chan service.JobSpec)
		for w := 0; w < *conc; w++ {
			go func() {
				for spec := range work {
					launch(spec)
				}
			}()
		}
		for _, spec := range specs {
			wg.Add(1)
			work <- spec
		}
		close(work)
	}
	wg.Wait()
	elapsed := time.Since(wall)

	mode := "closed loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open loop at %.3g jobs/sec", *rate)
	}
	fmt.Printf("ssrload: %s suite %q: %d completed, %d failed, %d refused, %d throttled in %v (%.1f jobs/sec)\n",
		mode, *suite, completed, failed, refused, throttled, elapsed.Round(time.Millisecond),
		float64(completed+failed)/elapsed.Seconds())
	rep := report{
		Suite:                *suite,
		Mode:                 "closed",
		Concurrency:          *conc,
		Tenants:              *tenants,
		Jobs:                 *jobs,
		Completed:            completed,
		Failed:               failed,
		Refused:              refused,
		Throttled:            throttled,
		WallSec:              elapsed.Seconds(),
		ThroughputJobsPerSec: float64(completed+failed) / elapsed.Seconds(),
	}
	if *rate > 0 {
		rep.Mode = "open"
		rep.RateJobsPerSec = *rate
		rep.Concurrency = 0
	}
	if len(latencies) > 0 {
		s := stats.Summarize(latencies)
		fmt.Printf("client latency (s): mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
			s.Mean, s.Median, s.P90, s.P99, s.Max)
		snap := latHist.Snapshot()
		rep.Latency = &latencySummary{
			MeanSec: s.Mean, P50Sec: s.Median, P90Sec: s.P90, P99Sec: s.P99, MaxSec: s.Max,
			Histogram: &snap,
		}
	}
	attachServerMetrics(ctx, cli, &rep)
	if *jsonOut != "" {
		if err := writeReport(rep, *jsonOut); err != nil {
			return fmt.Errorf("write -json report: %w", err)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d jobs did not complete", failed, *jobs)
	}
	return nil
}

// attachServerMetrics snapshots the daemon's /metrics into the report and
// prints the human-readable server summary.
func attachServerMetrics(ctx context.Context, cli *service.Client, rep *report) {
	ms, err := cli.Metrics(ctx)
	if err != nil {
		return
	}
	rep.Server = &ms
	fmt.Printf("server: virtual %.1fs at %gx, utilization %.1f%%, reserved-idle %.2f%%\n",
		ms.VirtualNowMs/1000, ms.Dilation, 100*ms.Utilization, 100*ms.ReservedFraction)
	if ms.NumShards > 1 {
		fmt.Printf("server shards: %d", ms.NumShards)
		if ms.Lending != nil {
			fmt.Printf(", lending granted=%d finished=%d returned=%d outstanding=%d",
				ms.Lending.Granted, ms.Lending.Finished, ms.Lending.Returned, ms.Lending.Outstanding)
		}
		fmt.Println()
	}
	rep.Preempted = ms.AttemptsPreempted
	rep.Migrated = ms.ReservationsMigrated
	rep.Rereserved = ms.ReservationsReissued
	if ms.NodeDrains > 0 || ms.AttemptsPreempted > 0 {
		fmt.Printf("server node churn: drains=%d undrains=%d preempted=%d migrated=%d rereserved=%d (up=%d draining=%d down=%d)\n",
			ms.NodeDrains, ms.NodeUndrains, ms.AttemptsPreempted,
			ms.ReservationsMigrated, ms.ReservationsReissued,
			ms.NodesUp, ms.NodesDraining, ms.NodesDown)
	}
	if ms.Slowdowns.Count > 0 {
		fmt.Printf("server slowdowns: n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f (dropped %d)\n",
			ms.Slowdowns.Count, ms.Slowdowns.Mean, ms.Slowdowns.P50,
			ms.Slowdowns.P95, ms.Slowdowns.Max, ms.Slowdowns.Dropped)
	}
}
