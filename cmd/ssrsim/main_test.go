package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// silence routes the run's stdout to /dev/null for the duration of a test.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Errorf("close devnull: %v", err)
		}
	})
}

// tiny returns fast-running base arguments.
func tiny(extra ...string) []string {
	base := []string{"-nodes", "4", "-slots", "2", "-bg", "5", "-window", "30s"}
	return append(base, extra...)
}

func TestRunModes(t *testing.T) {
	silence(t)
	tests := [][]string{
		tiny("-mode", "none", "-suite", "none"),
		tiny("-mode", "ssr", "-suite", "none"),
		tiny("-mode", "ssr", "-suite", "none", "-p", "0.5", "-mitigate"),
		tiny("-mode", "timeout", "-suite", "none", "-timeout", "5s"),
		tiny("-mode", "static", "-suite", "none", "-static", "2"),
	}
	for _, args := range tests {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunSuites(t *testing.T) {
	silence(t)
	// Bigger cluster so the ML suites fit.
	for _, suite := range []string{"ml", "ml2x", "sql"} {
		args := []string{"-nodes", "30", "-slots", "2", "-bg", "5",
			"-window", "60s", "-mode", "ssr", "-suite", suite}
		if err := run(args); err != nil {
			t.Errorf("suite %s: %v", suite, err)
		}
	}
}

// capture runs fn with os.Stdout redirected to a pipe and returns what it
// wrote.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	runErr := fn()
	if err := w.Close(); err != nil {
		t.Errorf("close pipe: %v", err)
	}
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v\n%s", runErr, out)
	}
	return out
}

func TestRunParallelBaselinesMatchSerial(t *testing.T) {
	args := func(parallel string) []string {
		return []string{"-nodes", "30", "-slots", "2", "-bg", "5",
			"-window", "60s", "-mode", "ssr", "-suite", "ml", "-parallel", parallel}
	}
	// Drop the wall-clock line ("... in 12ms ..."), which legitimately
	// varies between runs; everything else must be byte-identical.
	strip := func(out string) string {
		lines := strings.Split(out, "\n")
		kept := lines[:0]
		for _, l := range lines {
			if !strings.HasPrefix(l, "simulated ") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	serial := capture(t, func() error { return run(args("1")) })
	par := capture(t, func() error { return run(args("8")) })
	if strip(serial) != strip(par) {
		t.Errorf("parallel output differs from serial:\n--- serial\n%s\n--- parallel\n%s", serial, par)
	}
	if !strings.Contains(serial, "fg kmeans") {
		t.Errorf("missing foreground result lines:\n%s", serial)
	}
}

func TestRunVerbose(t *testing.T) {
	silence(t)
	if err := run(tiny("-suite", "none", "-v")); err != nil {
		t.Fatalf("run -v: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	silence(t)
	if err := run(tiny("-mode", "bogus")); err == nil {
		t.Error("bad mode should error")
	}
	if err := run(tiny("-suite", "bogus")); err == nil {
		t.Error("bad suite should error")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag should error")
	}
	if err := run(tiny("-mode", "ssr", "-p", "7")); err == nil {
		t.Error("invalid P should error")
	}
}

func TestRunTraceExports(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	jsonPath := filepath.Join(dir, "trace.json")
	if err := run(tiny("-suite", "none", "-trace", csvPath, "-gantt")); err != nil {
		t.Fatalf("run -trace csv: %v", err)
	}
	if err := run(tiny("-suite", "none", "-trace", jsonPath)); err != nil {
		t.Fatalf("run -trace json: %v", err)
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("read csv: %v", err)
	}
	if !strings.HasPrefix(string(csvData), "job,jobName") {
		t.Errorf("csv missing header: %q", string(csvData[:40]))
	}
	jsonData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(jsonData)), "[") {
		t.Error("json trace should be an array")
	}
}

func TestRunTraceToBadPath(t *testing.T) {
	silence(t)
	if err := run(tiny("-suite", "none", "-trace", "/definitely/not/a/dir/x.csv")); err == nil {
		t.Error("unwritable trace path should error")
	}
}

func TestRunJobsFileRoundTrip(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	wl := filepath.Join(dir, "workload.csv")
	// Dump a synthesized workload, then feed it back in as foreground.
	if err := run(tiny("-suite", "none", "-dumpjobs", wl)); err != nil {
		t.Fatalf("run -dumpjobs: %v", err)
	}
	if err := run([]string{"-nodes", "8", "-slots", "2", "-bg", "0",
		"-window", "30s", "-jobs", wl, "-mode", "ssr"}); err != nil {
		t.Fatalf("run -jobs: %v", err)
	}
	if err := run(tiny("-jobs", filepath.Join(dir, "missing.csv"))); err == nil {
		t.Error("missing jobs file should error")
	}
	if err := run(tiny("-suite", "none", "-dumpjobs", "/no/such/dir/x.csv")); err == nil {
		t.Error("unwritable dump path should error")
	}
}

func TestRunPerfettoAndAuditExports(t *testing.T) {
	silence(t)
	dir := t.TempDir()
	perf := filepath.Join(dir, "perfetto.json")
	audit := filepath.Join(dir, "audit.jsonl")
	if err := run(tiny("-mode", "ssr", "-suite", "none",
		"-perfetto", perf, "-audit", audit)); err != nil {
		t.Fatalf("run -perfetto -audit: %v", err)
	}
	perfData, err := os.ReadFile(perf)
	if err != nil {
		t.Fatalf("read perfetto: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(perfData, &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("perfetto trace has no events")
	}
	cats := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if c, ok := ev["cat"].(string); ok {
			cats[c] = true
		}
	}
	if !cats["task"] {
		t.Error("perfetto trace missing task events")
	}
	if !cats["reservation"] {
		t.Error("perfetto trace missing reservation spans")
	}
	auditData, err := os.ReadFile(audit)
	if err != nil {
		t.Fatalf("read audit: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(auditData)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty audit JSONL")
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("audit line 0 not JSON: %v", err)
	}
	if _, ok := first["kind"]; !ok {
		t.Errorf("audit line missing kind: %v", first)
	}
}
