// Command ssrsim runs a single configurable contention simulation: a
// foreground application suite against synthesized background jobs, under a
// chosen reservation policy, and prints per-job results.
//
// Example:
//
//	ssrsim -nodes 50 -slots 2 -mode ssr -p 0.9 -bg 100 -suite ml
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/estimate"
	"ssr/internal/faults"
	"ssr/internal/obs"
	"ssr/internal/runner"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/trace"
	"ssr/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ssrsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ssrsim", flag.ContinueOnError)
	var (
		nodes     = fs.Int("nodes", 50, "cluster nodes")
		perNode   = fs.Int("slots", 2, "slots per node")
		modeName  = fs.String("mode", "none", "reservation mode: none, ssr, timeout, static")
		isolation = fs.Float64("p", 1.0, "SSR isolation guarantee P in (0, 1]")
		alpha     = fs.Float64("alpha", 1.6, "operator's Pareto tail estimate for the deadline")
		threshold = fs.Float64("r", 0.5, "SSR pre-reservation threshold R")
		mitigate  = fs.Bool("mitigate", false, "use reserved slots as straggler mitigators")
		adaptive  = fs.Bool("adaptive", false, "re-derive SSR deadlines from streaming tail estimators instead of -alpha alone")
		timeout   = fs.Duration("timeout", 10*time.Second, "reservation timeout (mode=timeout)")
		static    = fs.Int("static", 0, "statically fenced slots (mode=static)")
		suite     = fs.String("suite", "ml", "foreground suite: ml, ml2x, sql, none")
		bgJobs    = fs.Int("bg", 100, "background jobs")
		window    = fs.Duration("window", 6*time.Minute, "background arrival window")
		bgScale   = fs.Float64("bgscale", 1.0, "background task duration scale")
		locFactor = fs.Float64("locality", 5.0, "locality miss penalty factor")
		locWait   = fs.Duration("wait", 3*time.Second, "locality wait")
		mttf      = fs.Duration("mttf", 0, "per-node mean time to failure (0 disables fault injection)")
		repair    = fs.Duration("repair", 30*time.Second, "node repair time after a crash (0 = permanent)")
		parallel  = fs.Int("parallel", 0, "workers for the per-job baseline simulations (0 = GOMAXPROCS)")
		seed      = fs.Int64("seed", 42, "random seed")
		verbose   = fs.Bool("v", false, "print every job, not only the foreground")
		traceOut  = fs.String("trace", "", "write a per-attempt trace to this file (.csv or .json)")
		perfetto  = fs.String("perfetto", "", "write a Chrome/Perfetto trace-event JSON to this file (load at ui.perfetto.dev)")
		auditOut  = fs.String("audit", "", "write the reservation-decision audit stream to this file (JSONL)")
		gantt     = fs.Bool("gantt", false, "render a text Gantt chart of the run")
		jobsIn    = fs.String("jobs", "", "load foreground jobs from a workload trace CSV instead of -suite")
		dumpJobs  = fs.String("dumpjobs", "", "write the synthesized workload (foreground+background) to this CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := driver.Options{
		LocalityWait:   *locWait,
		LocalityFactor: *locFactor,
	}
	if *mttf > 0 {
		// Survive transient crashes rather than abort: the sweep's
		// interest is the isolation under churn, not job failures.
		opts.Retry = driver.RetryPolicy{MaxAttempts: 10}
	}
	var rec *trace.Recorder
	if *traceOut != "" || *gantt || *perfetto != "" {
		rec = &trace.Recorder{}
		opts.Trace = rec
	}
	var audit *obs.Audit
	if *perfetto != "" || *auditOut != "" {
		// Retain the whole run: offline exports want every decision, not a
		// live tail.
		audit = obs.NewAudit(1 << 20)
		opts.Audit = audit
	}
	var est *estimate.Registry
	if *adaptive {
		est = estimate.New(estimate.Config{})
		opts.Adaptive = est
	}
	switch *modeName {
	case "none":
		opts.Mode = driver.ModeNone
	case "ssr":
		opts.Mode = driver.ModeSSR
		opts.SSR = core.Config{
			Enabled:             true,
			IsolationP:          *isolation,
			Alpha:               *alpha,
			PreReserveThreshold: *threshold,
			MitigateStragglers:  *mitigate,
		}
	case "timeout":
		opts.Mode = driver.ModeTimeout
		opts.Timeout = *timeout
	case "static":
		opts.Mode = driver.ModeStatic
		opts.StaticSlots = *static
		opts.StaticMinPriority = 10
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}

	var fg []*dag.Job
	fgStart := *window / 4
	if *jobsIn != "" {
		loaded, err := loadJobs(*jobsIn)
		if err != nil {
			return err
		}
		fg = loaded
		*suite = "none"
	}
	switch *suite {
	case "ml", "ml2x":
		for i, spec := range workload.MLSuite() {
			if *suite == "ml2x" {
				spec = spec.ScaleParallelism(2)
			}
			j, err := spec.Build(dag.JobID(i+1), 10, fgStart+time.Duration(i)*20*time.Second,
				stats.SubStream(*seed, "fg", i))
			if err != nil {
				return err
			}
			fg = append(fg, j)
		}
	case "sql":
		for i, q := range workload.SQLQueries(1) {
			j, err := q.Build(dag.JobID(i+1), 10, fgStart+time.Duration(i)*10*time.Second,
				stats.SubStream(*seed, "fg", i))
			if err != nil {
				return err
			}
			fg = append(fg, j)
		}
	case "none":
	default:
		return fmt.Errorf("unknown suite %q", *suite)
	}

	bgCfg := workload.BackgroundConfig{
		Jobs:           *bgJobs,
		Window:         *window,
		MeanTask:       12 * time.Second,
		Alpha:          1.6,
		DurationScale:  *bgScale,
		MaxParallelism: 40,
	}
	bg, err := workload.Background(bgCfg, 1000, 1, stats.Stream(*seed, "bg"))
	if err != nil {
		return err
	}
	if *dumpJobs != "" {
		if err := dumpWorkload(*dumpJobs, fg, bg); err != nil {
			return err
		}
		fmt.Printf("wrote %d jobs to %s\n", len(fg)+len(bg), *dumpJobs)
	}

	eng := sim.New()
	cl, err := cluster.New(*nodes, *perNode)
	if err != nil {
		return err
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		return err
	}
	for _, j := range fg {
		if err := d.Submit(j); err != nil {
			return err
		}
	}
	for _, j := range bg {
		if err := d.Submit(j); err != nil {
			return err
		}
	}
	if *mttf > 0 {
		faults.Poisson{MTTF: *mttf, Repair: *repair, Seed: *seed}.Install(d)
	}
	start := time.Now()
	if err := d.Run(); err != nil {
		return err
	}

	fmt.Printf("simulated %d jobs on %d slots in %v (virtual makespan %v, %d events)\n",
		len(fg)+len(bg), cl.NumSlots(), time.Since(start).Round(time.Millisecond),
		d.Makespan().Round(time.Second), eng.Events())
	fmt.Printf("cluster utilization over makespan: %.1f%%, reserved-idle: %.2f%%\n",
		100*d.Usage().Utilization(d.Makespan()),
		100*d.Usage().ReservedFraction(d.Makespan()))
	if fc := d.Faults(); fc.Any() {
		fmt.Println(fc)
	}
	if est != nil {
		for _, cs := range est.Snapshot() {
			fmt.Printf("estimator %s/%s: n=%d alpha=%.2f tm=%.2fs ks=%.3f stable=%v effP=%.3f hold=%.3f (fits=%d rejects=%d)\n",
				orDefault(cs.Tenant), cs.Class, cs.Observed, cs.Alpha, cs.TmSec,
				cs.KS, cs.Stable, cs.EffectiveP, cs.HoldEWMA, cs.Fits, cs.Rejects)
		}
	}

	// The baselines replay each foreground job on an empty cluster — one
	// independent simulation per job, so they parallelize cleanly.
	alones, err := runner.Map(*parallel, len(fg), func(i int) (time.Duration, error) {
		return driver.AloneJCT(fg[i], *nodes, *perNode, opts)
	})
	if err != nil {
		return err
	}
	for i, j := range fg {
		st, _ := d.Result(j.ID)
		fmt.Printf("fg %-12s jct=%-10v alone=%-10v slowdown=%.2f copies=%d/%d local/any=%d/%d\n",
			j.Name, st.JCT().Round(time.Millisecond), alones[i].Round(time.Millisecond),
			float64(st.JCT())/float64(alones[i]), st.CopiesWon, st.CopiesLaunched,
			st.LocalPlacements, st.AnyPlacements)
	}
	if *verbose {
		for _, j := range bg {
			st, _ := d.Result(j.ID)
			fmt.Printf("bg %-12s jct=%v\n", j.Name, st.JCT().Round(time.Millisecond))
		}
	}
	if *gantt {
		fmt.Print(trace.Gantt(rec.Events(), trace.GanttOptions{Width: 100, Slots: 64}))
	}
	if *traceOut != "" {
		if err := rec.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("wrote %d trace events to %s\n", rec.Len(), *traceOut)
	}
	if *perfetto != "" {
		if err := obs.WritePerfettoFile(*perfetto, rec.Events(), audit.Events()); err != nil {
			return err
		}
		fmt.Printf("wrote Perfetto trace to %s (open at ui.perfetto.dev)\n", *perfetto)
	}
	if *auditOut != "" {
		if err := audit.WriteFile(*auditOut); err != nil {
			return err
		}
		fmt.Printf("wrote %d audit events to %s (%d dropped by retention)\n",
			audit.Len(), *auditOut, audit.Dropped())
	}
	return nil
}

// orDefault maps the empty (single-tenant) tenant name to "default" for
// display, matching the metric-label convention.
func orDefault(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// loadJobs reads a workload trace CSV.
func loadJobs(path string) ([]*dag.Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() {
		// Read-only close; an error here cannot lose data.
		_ = f.Close()
	}()
	return workload.FromCSV(f)
}

// dumpWorkload writes the synthesized jobs to a workload trace CSV.
func dumpWorkload(path string, groups ...[]*dag.Job) error {
	var all []*dag.Job
	for _, g := range groups {
		all = append(all, g...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WriteCSV(f, all); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
