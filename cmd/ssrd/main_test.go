package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"ssr/internal/service"
)

// silence routes the daemon's stdout to /dev/null for the duration of a
// test.
func silence(t *testing.T) {
	t.Helper()
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open devnull: %v", err)
	}
	os.Stdout = devnull
	t.Cleanup(func() {
		os.Stdout = old
		if err := devnull.Close(); err != nil {
			t.Errorf("close devnull: %v", err)
		}
	})
}

// startDaemon runs the daemon on an ephemeral port and returns a client
// plus the signal channel and exit channel.
func startDaemon(t *testing.T, extra ...string) (*service.Client, chan os.Signal, chan error) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	sigC := make(chan os.Signal, 1)
	readyC := make(chan string, 1)
	exitC := make(chan error, 1)
	go func() {
		exitC <- run(args, sigC, func(addr string) { readyC <- addr })
	}()
	select {
	case addr := <-readyC:
		return service.NewClient("http://" + addr), sigC, exitC
	case err := <-exitC:
		t.Fatalf("daemon exited before ready: %v", err)
		return nil, nil, nil
	}
}

// TestDaemonLifecycle is the end-to-end smoke: start, submit a two-phase
// job over HTTP, watch it complete, stream events, then SIGTERM and
// verify a clean drain with a flushed trace.
func TestDaemonLifecycle(t *testing.T) {
	silence(t)
	tracePath := filepath.Join(t.TempDir(), "trace.csv")
	cli, sigC, exitC := startDaemon(t,
		"-nodes", "4", "-slots", "2", "-mode", "ssr",
		"-dilation", "200", "-drain", "5s", "-trace", tracePath)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// An open SSE stream must not wedge shutdown.
	streamEnded := make(chan struct{})
	go func() {
		defer close(streamEnded)
		_ = cli.StreamEvents(ctx, 0, func(service.Event) error { return nil })
	}()

	spec := service.JobSpec{Name: "smoke", Priority: 5, Phases: []service.PhaseSpec{
		{DurationsMs: []float64{400, 400, 400}},
		{DurationsMs: []float64{200, 200}, Deps: []int{0}},
	}}
	st, err := cli.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := cli.WaitJob(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != service.StateCompleted || final.TasksRun != 5 {
		t.Fatalf("final status = %+v", final)
	}
	cs, err := cli.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Slots != 8 || len(cs.SlotList) != 8 {
		t.Errorf("cluster view = %+v", cs)
	}
	ms, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms.JobsCompleted != 1 || ms.Dilation != 200 {
		t.Errorf("metrics = %+v", ms)
	}

	sigC <- syscall.SIGTERM
	select {
	case err := <-exitC:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	select {
	case <-streamEnded:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE stream still open after daemon exit")
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not flushed: %v", err)
	}
	if !strings.HasPrefix(string(data), "job,jobName") || strings.Count(string(data), "\n") < 6 {
		t.Errorf("trace content unexpected: %q", string(data))
	}
}

// TestDaemonDrainAborts covers the impatient path: SIGTERM with a job that
// cannot finish inside the grace — the job is aborted, admission answers
// 503 during the drain, and the daemon still exits 0.
func TestDaemonDrainAborts(t *testing.T) {
	silence(t)
	cli, sigC, exitC := startDaemon(t,
		"-nodes", "2", "-slots", "1", "-mode", "none",
		"-dilation", "10", "-drain", "100ms")

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	// 60 virtual seconds at dilation 10 = 6s real, far past the grace.
	long := service.JobSpec{Name: "long", Priority: 1, Phases: []service.PhaseSpec{
		{DurationsMs: []float64{60000}},
	}}
	st, err := cli.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	// Let it start running before signaling.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := cli.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sigC <- syscall.SIGTERM
	// During the drain window, admission must refuse.
	refused := false
	for i := 0; i < 200; i++ {
		_, err := cli.Submit(ctx, long)
		if service.IsUnavailable(err) {
			refused = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !refused {
		t.Error("admission never returned 503 during drain")
	}
	select {
	case err := <-exitC:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func TestDaemonBadFlags(t *testing.T) {
	silence(t)
	sigC := make(chan os.Signal)
	if err := run([]string{"-mode", "bogus"}, sigC, nil); err == nil {
		t.Error("bad mode should error")
	}
	if err := run([]string{"-not-a-flag"}, sigC, nil); err == nil {
		t.Error("bad flag should error")
	}
	if err := run([]string{"-addr", "256.0.0.1:-2"}, sigC, nil); err == nil {
		t.Error("bad address should error")
	}
	if err := run([]string{"-mode", "ssr", "-p", "7"}, sigC, nil); err == nil {
		t.Error("invalid isolation P should error")
	}
	if err := run([]string{"-router", "bogus"}, sigC, nil); err == nil {
		t.Error("unknown router should error")
	}
	if err := run([]string{"-shards", "8", "-nodes", "4"}, sigC, nil); err == nil {
		t.Error("more shards than nodes should error")
	}
}

// TestDaemonShardedWithPprof starts a 4-shard daemon with the debug
// listener enabled: jobs complete across shards, /metrics carries the
// per-shard breakdown, and pprof + expvar answer on the side port.
func TestDaemonShardedWithPprof(t *testing.T) {
	silence(t)
	cli, sigC, exitC := startDaemon(t,
		"-nodes", "8", "-slots", "2", "-mode", "ssr",
		"-shards", "4", "-router", "least-loaded",
		"-dilation", "200", "-drain", "5s",
		"-pprof", "127.0.0.1:0")

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	spec := service.JobSpec{Name: "fanout", Priority: 5, Phases: []service.PhaseSpec{
		{DurationsMs: []float64{300, 300}},
		{DurationsMs: []float64{150}, Deps: []int{0}},
	}}
	var ids []int64
	for i := 0; i < 8; i++ {
		st, err := cli.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	shards := make(map[int]bool)
	for _, id := range ids {
		final, err := cli.WaitJob(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != service.StateCompleted {
			t.Fatalf("job %d ended %q", id, final.State)
		}
		shards[final.Shard] = true
	}
	if len(shards) < 2 {
		t.Errorf("least-loaded routing kept all jobs on one shard: %v", shards)
	}
	ms, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms.NumShards != 4 || len(ms.Shards) != 4 || ms.JobsCompleted != 8 {
		t.Errorf("sharded metrics = %d shards (%d detailed), %d completed",
			ms.NumShards, len(ms.Shards), ms.JobsCompleted)
	}

	sigC <- syscall.SIGTERM
	select {
	case err := <-exitC:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// TestDaemonPprofServes checks the opt-in debug listener actually answers
// pprof and expvar requests while the daemon runs.
func TestDaemonPprofServes(t *testing.T) {
	silence(t)

	// Grab a free port for the debug listener so the test can dial it.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := probe.Addr().String()
	probe.Close()

	_, sigC, exitC := startDaemon(t,
		"-nodes", "2", "-slots", "1", "-mode", "none",
		"-pprof", debugAddr)
	for path, want := range map[string]string{
		"/debug/pprof/cmdline": "",
		"/debug/vars":          "memstats",
	} {
		resp, err := http.Get("http://" + debugAddr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, err %v", path, resp.StatusCode, err)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Errorf("GET %s body lacks %q", path, want)
		}
	}

	sigC <- syscall.SIGTERM
	select {
	case err := <-exitC:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
