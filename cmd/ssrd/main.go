// Command ssrd runs the SSR scheduler as an online daemon: a simulated
// cluster driven in wall-clock time (with configurable time dilation)
// behind an HTTP/JSON API.
//
//	POST /v1/jobs          submit a workflow job (service.JobSpec, with an
//	                       optional "tenant" field); 429 + Retry-After when
//	                       the tenant's quota rejects it
//	GET  /v1/jobs          paginated list (?limit=&after=&tenant=);
//	                       GET /v1/jobs/{id} for one
//	GET  /v1/tenants       per-tenant quotas and usage; /v1/tenants/{id}
//	GET  /v1/cluster       per-slot state
//	GET  /v1/nodes         per-node lifecycle state (speed, pool, drain);
//	                       POST /v1/nodes/{id}/drain and .../undrain manage
//	                       preemption notices by hand
//	GET  /v1/metrics       utilization, counters, online slowdowns (JSON);
//	                       ?format=prometheus for text exposition 0.0.4
//	GET  /v1/trace         recorded task attempts (requires -trace);
//	                       ?format=perfetto for Chrome trace-event JSON
//	GET  /v1/audit         reservation-decision audit stream (JSON Lines)
//	GET  /v1/estimators    live adaptive-SSR estimator snapshots
//	                       (requires -adaptive; 404 otherwise)
//	GET  /v1/events        server-sent lifecycle event stream
//	GET  /v1/healthz       liveness
//
// Errors use the uniform envelope {"error": {"code", "message",
// "retry_after_ms"}}. The unversioned routes of earlier releases remain as
// deprecated aliases for one release.
//
// With -shards K > 1 the cluster is partitioned into K independent
// scheduler shards; -router picks the job-placement policy and idle slots
// are lent across shards for SSR pre-reservation (cap it with -lend).
// -tenants declares per-tenant quotas ("gold:cap=16,weight=3;batch:cap=8");
// -policy swaps the per-shard slot policy (ssr, dagps, sgpack).
//
// Node lifecycle: -speeds sets heterogeneous per-node speed factors
// ("2,1,1,0.5"), -autoscale runs an elastic node pool
// ("min=2,max=8,warmup=2s,notice=1s"), and -preempt injects spot-style
// reclamations with advance notice ("mtbp=30s,notice=2s,recover=10s").
//
// On SIGTERM/SIGINT the daemon drains gracefully: it stops admitting jobs
// (503 on POST /v1/jobs), gives in-flight jobs the -drain grace to finish,
// aborts the rest, flushes the trace file if one was requested, and exits 0.
//
// Example:
//
//	ssrd -addr 127.0.0.1:8347 -nodes 20 -slots 2 -mode ssr -p 0.9 -dilation 100
//	ssrd -nodes 20 -shards 4 -router least-loaded -pprof 127.0.0.1:6060
//	ssrd -nodes 20 -tenants 'gold:cap=24,weight=3,p=0.95;batch:weight=1'
package main

import (
	"context"
	"errors"
	_ "expvar" // registers /debug/vars on the -pprof listener
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the -pprof listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ssr/internal/core"
	"ssr/internal/driver"
	"ssr/internal/faults"
	"ssr/internal/lifecycle"
	"ssr/internal/service"
	"ssr/internal/shard"
	"ssr/internal/tenant"
)

func main() {
	sigC := make(chan os.Signal, 1)
	signal.Notify(sigC, syscall.SIGTERM, syscall.SIGINT)
	if err := run(os.Args[1:], sigC, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ssrd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until a signal arrives on sigC and the
// drain completes. ready, when non-nil, is called with the bound address
// once the listener is up (tests use it with ":0" ports).
func run(args []string, sigC <-chan os.Signal, ready func(addr string)) error {
	fs := flag.NewFlagSet("ssrd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks one)")
		nodes     = fs.Int("nodes", 20, "cluster nodes")
		perNode   = fs.Int("slots", 2, "slots per node")
		modeName  = fs.String("mode", "ssr", "reservation mode: none, ssr, timeout, static")
		isolation = fs.Float64("p", 0.9, "SSR isolation guarantee P in (0, 1]")
		alpha     = fs.Float64("alpha", 1.6, "operator's Pareto tail estimate for the deadline")
		threshold = fs.Float64("r", 0.5, "SSR pre-reservation threshold R")
		mitigate  = fs.Bool("mitigate", false, "use reserved slots as straggler mitigators")
		adaptive  = fs.Bool("adaptive", false, "re-derive SSR deadlines from streaming tail estimators instead of -alpha alone")
		timeout   = fs.Duration("timeout", 10*time.Second, "reservation timeout (mode=timeout)")
		static    = fs.Int("static", 0, "statically fenced slots (mode=static)")
		dilation  = fs.Float64("dilation", 1, "virtual seconds per wall-clock second")
		drain     = fs.Duration("drain", 10*time.Second, "grace for in-flight jobs on shutdown before aborting them")
		traceOut  = fs.String("trace", "", "flush a per-attempt trace to this file on shutdown (.csv or .json)")
		auditCap  = fs.Int("audit-cap", 0, "audit ring retention in events (0 = default 8192, negative disables)")
		baseline  = fs.Int("baseline-workers", 2, "workers computing alone-JCT slowdown baselines (negative disables)")
		shards    = fs.Int("shards", 1, "scheduler shards the cluster is partitioned into")
		router    = fs.String("router", "hash", "job placement across shards: hash, least-loaded, best-fit")
		lend      = fs.Float64("lend", 0.5, "max fraction of a shard's slots lendable cross-shard (0 disables lending)")
		policy    = fs.String("policy", "", "slot policy preset: ssr, dagps, sgpack (empty keeps -mode's queue)")
		tenants   = fs.String("tenants", "", "per-tenant quotas: 'name[:cap=N][,weight=W][,p=P][;name2...]'")
		pprofAddr = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (off when empty)")
		speeds    = fs.String("speeds", "", "per-node speed factors, comma separated ('2,1,1,0.5'); unlisted nodes run at 1")
		autoscale = fs.String("autoscale", "", "elastic node pool: 'min=N[,max=N][,interval=D][,warmup=D][,notice=D][,queue=N][,slowdown=F][,idle=N]'")
		preempt   = fs.String("preempt", "", "spot preemption injector: 'mtbp=D[,notice=D][,recover=D][,seed=N]'")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	routerImpl, err := shard.ParseRouter(*router)
	if err != nil {
		return err
	}
	cfg := service.Config{
		Nodes:           *nodes,
		SlotsPerNode:    *perNode,
		Shards:          *shards,
		Router:          routerImpl,
		Dilation:        *dilation,
		BaselineWorkers: *baseline,
		RecordTrace:     *traceOut != "",
		AuditCapacity:   *auditCap,
		Adaptive:        *adaptive,
	}
	if *lend <= 0 {
		cfg.Lending.Disabled = true
	} else {
		cfg.Lending.MaxLendFraction = *lend
	}
	if *tenants != "" {
		reg, err := tenant.ParseSpec(*tenants)
		if err != nil {
			return err
		}
		cfg.Tenants = reg
	}
	if *speeds != "" {
		cfg.NodeSpeeds, err = parseSpeeds(*speeds)
		if err != nil {
			return err
		}
	}
	if *autoscale != "" {
		cfg.Autoscale, err = parseAutoscale(*autoscale)
		if err != nil {
			return err
		}
	}
	var preemptor *faults.Preemptor
	if *preempt != "" {
		preemptor, err = parsePreempt(*preempt)
		if err != nil {
			return err
		}
	}
	applyMode := true
	if *policy != "" {
		pol, err := driver.ParsePolicy(*policy)
		if err != nil {
			return err
		}
		cfg.Driver.Policy = pol
		// With -policy and no explicit -mode, the policy's own reservation
		// mode governs (dagps/sgpack are work conserving, ssr reserves with
		// the paper defaults); an explicit -mode always wins over it.
		applyMode = false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "mode" {
				applyMode = true
			}
		})
	}
	if applyMode {
		switch *modeName {
		case "none":
			cfg.Driver.Mode = driver.ModeNone
		case "ssr":
			cfg.Driver.Mode = driver.ModeSSR
			cfg.Driver.SSR = core.Config{
				Enabled:             true,
				IsolationP:          *isolation,
				Alpha:               *alpha,
				PreReserveThreshold: *threshold,
				MitigateStragglers:  *mitigate,
			}
		case "timeout":
			cfg.Driver.Mode = driver.ModeTimeout
			cfg.Driver.Timeout = *timeout
		case "static":
			cfg.Driver.Mode = driver.ModeStatic
			cfg.Driver.StaticSlots = *static
			cfg.Driver.StaticMinPriority = 10
		default:
			return fmt.Errorf("unknown mode %q", *modeName)
		}
	}

	svc, err := service.New(cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	if preemptor != nil {
		for i := 0; i < svc.NumShards(); i++ {
			p := *preemptor
			p.Seed += int64(i) // independent preemption streams per shard
			if err := svc.CallShard(i, func(d *driver.Driver) { p.Install(d) }); err != nil {
				return err
			}
		}
	}

	if *pprofAddr != "" {
		// Opt-in debug endpoints on their own listener, kept off the API
		// mux: net/http/pprof and expvar register on DefaultServeMux.
		debugLn, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		debugSrv := &http.Server{Handler: http.DefaultServeMux}
		go func() { _ = debugSrv.Serve(debugLn) }()
		defer debugSrv.Close()
		fmt.Printf("ssrd: pprof/expvar on http://%s/debug/pprof/\n", debugLn.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Printf("ssrd: listening on %s (%s)\n", ln.Addr(), svc)
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case sig := <-sigC:
		fmt.Printf("ssrd: %v, draining (grace %v)\n", sig, *drain)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	// Drain: admission off (POST /jobs answers 503), in-flight jobs get
	// the grace, stragglers are aborted. Reads and the event stream stay
	// up throughout so clients observe the abort events.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	aborted, err := svc.Drain(drainCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if aborted > 0 {
		fmt.Printf("ssrd: drain grace expired, aborted %d in-flight jobs\n", aborted)
	} else {
		fmt.Println("ssrd: drained clean")
	}

	// Closing the service closes the event bus, which ends every open SSE
	// stream — otherwise those connections would pin Shutdown until its
	// timeout.
	svc.Close()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = srv.Shutdown(shutCtx)
	cancel()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}

	if *traceOut != "" {
		rec := svc.Trace()
		if err := rec.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Printf("ssrd: flushed %d trace events to %s\n", rec.Len(), *traceOut)
	}
	return nil
}

// parseSpeeds parses the -speeds value: comma-separated positive floats.
func parseSpeeds(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-speeds: bad factor %q", p)
		}
		out[i] = v
	}
	return out, nil
}

// kvPairs splits "k=v,k=v" and calls set for each pair.
func kvPairs(flagName, s string, set func(k, v string) error) error {
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok || v == "" {
			return fmt.Errorf("%s: %q is not key=value", flagName, kv)
		}
		if err := set(k, v); err != nil {
			return err
		}
	}
	return nil
}

// parseAutoscale parses the -autoscale value into an elastic-pool config;
// unspecified keys keep the lifecycle package defaults.
func parseAutoscale(s string) (*lifecycle.AutoscaleConfig, error) {
	var as lifecycle.AutoscaleConfig
	err := kvPairs("-autoscale", s, func(k, v string) error {
		var err error
		switch k {
		case "min":
			as.Min, err = strconv.Atoi(v)
		case "max":
			as.Max, err = strconv.Atoi(v)
		case "interval":
			as.Interval, err = time.ParseDuration(v)
		case "warmup":
			as.WarmUp, err = time.ParseDuration(v)
		case "notice":
			as.Notice, err = time.ParseDuration(v)
		case "queue":
			as.GrowQueue, err = strconv.Atoi(v)
		case "slowdown":
			as.GrowSlowdown, err = strconv.ParseFloat(v, 64)
		case "idle":
			as.ShrinkIdleTicks, err = strconv.Atoi(v)
		default:
			return fmt.Errorf("-autoscale: unknown key %q", k)
		}
		if err != nil {
			return fmt.Errorf("-autoscale: bad %s %q", k, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &as, nil
}

// parsePreempt parses the -preempt value into a spot preemption injector.
func parsePreempt(s string) (*faults.Preemptor, error) {
	var p faults.Preemptor
	err := kvPairs("-preempt", s, func(k, v string) error {
		var err error
		switch k {
		case "mtbp":
			p.MTBP, err = time.ParseDuration(v)
		case "notice":
			p.Notice, err = time.ParseDuration(v)
		case "recover":
			p.Recover, err = time.ParseDuration(v)
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		default:
			return fmt.Errorf("-preempt: unknown key %q", k)
		}
		if err != nil {
			return fmt.Errorf("-preempt: bad %s %q", k, v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if p.MTBP <= 0 {
		return nil, fmt.Errorf("-preempt: mtbp must be positive")
	}
	return &p, nil
}
