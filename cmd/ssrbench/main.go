// Command ssrbench runs the scheduler benchmark scenarios and writes the
// per-PR BENCH_*.json trajectory snapshot. It is the engine behind
// scripts/bench.sh and the CI bench job.
//
//	ssrbench -short -out BENCH_7.json
//	ssrbench -list
//	ssrbench -short -out /tmp/cur.json -baseline BENCH_6.json -max-regress 0.20
//
// With -baseline, the run exits 1 when any scenario's ns/decision
// regresses by more than -max-regress relative to the baseline report.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssr/internal/bench"
)

func main() {
	var (
		short      = flag.Bool("short", false, "run scenarios at reduced scale (CI)")
		out        = flag.String("out", "", "write BENCH JSON report to this path")
		pr         = flag.Int("pr", 9, "PR number stamped into the report")
		scenarios  = flag.String("scenarios", "", "regexp filtering scenario names (default all)")
		baseline   = flag.String("baseline", "", "prior BENCH_*.json to gate against")
		maxRegress = flag.Float64("max-regress", 0.20, "tolerated ns/decision growth vs baseline (0.20 = +20%)")
		list       = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		for _, s := range bench.Scenarios() {
			fmt.Printf("%-20s %s\n", s.Name, s.Desc)
		}
		return
	}

	rep, err := bench.RunAll(*pr, *short, *scenarios)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssrbench:", err)
		os.Exit(1)
	}
	for _, r := range rep.Scenarios {
		fmt.Printf("%-20s %12d ns/op %8d allocs/op %10d B/op %10d decisions %10.1f ns/decision %12.0f decisions/s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.Decisions, r.NsPerDecision, r.DecisionsPerSec)
		for k, v := range r.Extras { //maporder:ok diagnostic printout only
			fmt.Printf("%-20s   extra %s = %.3f\n", "", k, v)
		}
	}
	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fmt.Fprintln(os.Stderr, "ssrbench: write report:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *baseline != "" {
		base, err := bench.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssrbench: read baseline:", err)
			os.Exit(1)
		}
		regs, err := bench.Compare(base, rep, *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssrbench:", err)
			os.Exit(1)
		}
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "ssrbench: REGRESSION %s: %.1f -> %.1f ns/decision (%.0f%% over baseline, tolerance %.0f%%)\n",
					r.Name, r.Baseline, r.Current, 100*(r.Ratio-1), 100**maxRegress)
			}
			os.Exit(1)
		}
		fmt.Printf("no ns/decision regression beyond %.0f%% vs %s\n", 100**maxRegress, *baseline)
	}
}
