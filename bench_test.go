// Package ssr's root benchmark harness: one sub-benchmark per registered
// experiment, each running at Quick scale and reporting the experiment's
// headline quantities as custom metrics, a parallel-harness benchmark, and
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// For paper-scale dimensions run the experiment binary instead:
//
//	go run ./cmd/ssrexp -scale full
package ssr

import (
	"fmt"
	"testing"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/experiments"
	"ssr/internal/runner"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

// BenchmarkExperiments runs every registered experiment serially at Quick
// scale, one sub-benchmark each, and reports the experiment's headline
// metrics (e.g. BenchmarkExperiments/fig1 reports kmeans-slowdown).
func BenchmarkExperiments(b *testing.B) {
	p := experiments.QuickParams()
	for _, e := range experiments.All() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			var res *experiments.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.RunSerial(e, p)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, name := range res.MetricNames() {
				b.ReportMetric(res.Metrics[name], name)
			}
		})
	}
}

// BenchmarkRunnerParallel measures the experiment harness at several worker
// counts on cell-rich experiments (fig12: 24 cells, fig14: 45 cells at
// Quick scale). The workers=1 case is the serial baseline.
func BenchmarkRunnerParallel(b *testing.B) {
	p := experiments.QuickParams()
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, name := range []string{"fig12", "fig14"} {
					e, ok := experiments.Lookup(name)
					if !ok {
						b.Fatalf("%s not registered", name)
					}
					if _, err := runner.Run(e, p, runner.Options{Parallel: workers}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- Ablations -----------------------------------------------------------

// ablationRun executes a canonical contention scenario (one KMeans-like
// foreground job vs a batch backlog on 50 slots) under the given options
// and returns the foreground slowdown and the reserved-idle slot-time.
func ablationRun(b *testing.B, opts driver.Options, reshape float64, fgSpec workload.MLSpec) (float64, time.Duration) {
	b.Helper()
	const (
		nodes   = 25
		perNode = 2
		seed    = 99
	)
	eng := sim.New()
	cl, err := cluster.New(nodes, perNode)
	if err != nil {
		b.Fatal(err)
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		b.Fatal(err)
	}
	fg, err := fgSpec.Build(1, 10, 45*time.Second, stats.Stream(seed, "fg"))
	if err != nil {
		b.Fatal(err)
	}
	if reshape > 1 {
		fg, err = workload.ParetoReshape(fg, reshape, stats.Stream(seed, "reshape"))
		if err != nil {
			b.Fatal(err)
		}
	}
	bgCfg := workload.BackgroundConfig{
		Jobs:           60,
		Window:         3 * time.Minute,
		MeanTask:       40 * time.Second,
		Alpha:          1.6,
		DurationScale:  1,
		MaxParallelism: 30,
	}
	bg, err := workload.Background(bgCfg, 100, 1, stats.Stream(seed, "bg"))
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Submit(fg); err != nil {
		b.Fatal(err)
	}
	for _, j := range bg {
		if err := d.Submit(j); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Run(); err != nil {
		b.Fatal(err)
	}
	st, _ := d.Result(fg.ID)
	alone, err := driver.AloneJCT(fg, nodes, perNode, opts)
	if err != nil {
		b.Fatal(err)
	}
	return float64(st.JCT()) / float64(alone), d.Usage().ReservedIdleTime()
}

func ssrAblationOpts() driver.Options {
	return driver.Options{Mode: driver.ModeSSR, SSR: core.DefaultConfig()}
}

// BenchmarkAblationReservationModes compares the four reservation policies
// on the same scenario: none, timeout-based, static, and SSR (the paper's
// Sec. III-A baselines vs the contribution).
func BenchmarkAblationReservationModes(b *testing.B) {
	modes := []struct {
		name string
		opts driver.Options
	}{
		{name: "none", opts: driver.Options{Mode: driver.ModeNone}},
		{name: "timeout", opts: driver.Options{Mode: driver.ModeTimeout, Timeout: 10 * time.Second}},
		{name: "static", opts: driver.Options{
			Mode: driver.ModeStatic, StaticSlots: 20, StaticMinPriority: 10,
		}},
		{name: "ssr", opts: ssrAblationOpts()},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				slow, _ = ablationRun(b, m.opts, 0, workload.KMeans)
			}
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationDeadline quantifies the deadline knob on heavy-tailed
// tasks: utilization loss at P=1 vs P=0.5.
func BenchmarkAblationDeadline(b *testing.B) {
	for _, p := range []float64{1.0, 0.5} {
		p := p
		name := "P1.0"
		if p < 1 {
			name = "P0.5"
		}
		b.Run(name, func(b *testing.B) {
			var idle time.Duration
			var slow float64
			for i := 0; i < b.N; i++ {
				opts := ssrAblationOpts()
				opts.SSR.IsolationP = p
				slow, idle = ablationRun(b, opts, 1.6, workload.KMeans)
			}
			b.ReportMetric(idle.Seconds(), "reserved-idle-slot-s")
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationMitigation measures straggler mitigation on vs off for
// a heavy-tailed foreground job.
func BenchmarkAblationMitigation(b *testing.B) {
	for _, mit := range []bool{false, true} {
		mit := mit
		name := "off"
		if mit {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				opts := ssrAblationOpts()
				opts.SSR.MitigateStragglers = mit
				slow, _ = ablationRun(b, opts, 1.6, workload.KMeans)
			}
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationParallelismAwareness compares Algorithm 1's Case-2
// handling (known downstream parallelism, early release of m-n slots)
// against the Case-1 reserve-all fallback, on a shrinking-parallelism job.
func BenchmarkAblationParallelismAwareness(b *testing.B) {
	shrink := func(known bool) *dag.Job {
		rng := stats.Stream(5, "shrink")
		dist, err := stats.LogNormalWithMean(0.4, 4)
		if err != nil {
			b.Fatal(err)
		}
		phase := func(tasks int) dag.PhaseSpec {
			ds := make([]time.Duration, tasks)
			for i := range ds {
				ds[i] = time.Duration(dist.Sample(rng) * float64(time.Second))
			}
			return dag.PhaseSpec{Durations: ds}
		}
		opts := []dag.Option{dag.WithSubmit(45 * time.Second)}
		if known {
			opts = append(opts, dag.WithKnownParallelism())
		}
		j, err := dag.Chain(1, "shrinking", 10, []dag.PhaseSpec{
			phase(20), phase(20), phase(5), phase(5), phase(5),
		}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return j
	}
	for _, known := range []bool{false, true} {
		known := known
		name := "reserve-all"
		if known {
			name = "parallelism-aware"
		}
		b.Run(name, func(b *testing.B) {
			var idle time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.New()
				cl, err := cluster.New(25, 2)
				if err != nil {
					b.Fatal(err)
				}
				d, err := driver.New(eng, cl, ssrAblationOpts())
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Submit(shrink(known)); err != nil {
					b.Fatal(err)
				}
				bg, err := workload.Background(workload.BackgroundConfig{
					Jobs: 40, Window: 3 * time.Minute, MeanTask: 40 * time.Second,
					Alpha: 1.6, DurationScale: 1, MaxParallelism: 30,
				}, 100, 1, stats.Stream(5, "bg"))
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range bg {
					if err := d.Submit(j); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				idle = d.Usage().ReservedIdleTime()
			}
			b.ReportMetric(idle.Seconds(), "reserved-idle-slot-s")
		})
	}
}

// BenchmarkAblationPreReservation compares SQL-style growing-parallelism
// jobs with pre-reservation effectively on (R=0.1) vs off (R=1).
func BenchmarkAblationPreReservation(b *testing.B) {
	for _, r := range []float64{0.1, 1.0} {
		r := r
		name := "R0.1"
		if r == 1.0 {
			name = "R1.0"
		}
		b.Run(name, func(b *testing.B) {
			e, ok := experiments.Lookup("fig16")
			if !ok {
				b.Fatal("fig16 not registered")
			}
			var slow float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunSerial(e, experiments.QuickParams())
				if err != nil {
					b.Fatal(err)
				}
				for row := range res.Rows {
					if res.Float(row, "R") == r {
						slow = res.Float(row, "avg slowdown")
					}
				}
			}
			b.ReportMetric(slow, "sql-slowdown")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw discrete-event throughput on a
// large-scale contention run (4000 slots, ~2800 background jobs), reporting
// simulated events per second of wall time.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		cl, err := cluster.New(1000, 4)
		if err != nil {
			b.Fatal(err)
		}
		d, err := driver.New(eng, cl, ssrAblationOpts())
		if err != nil {
			b.Fatal(err)
		}
		bg, err := workload.Background(workload.BackgroundConfig{
			Jobs: 2800, Window: 10 * time.Minute, MeanTask: 60 * time.Second,
			Alpha: 1.6, DurationScale: 1, MaxParallelism: 60,
		}, 1, 1, stats.Stream(3, "bench-bg"))
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range bg {
			if err := d.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		start := time.Now()
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		events += eng.Events()
	}
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}
