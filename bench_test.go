// Package ssr's root benchmark harness: one benchmark per figure of the
// paper's evaluation, each running the corresponding experiment at Quick
// scale and reporting the figure's headline quantity as a custom metric,
// plus ablation benchmarks for the design choices called out in DESIGN.md.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// For paper-scale dimensions run the experiment binary instead:
//
//	go run ./cmd/ssrexp -scale full
package ssr

import (
	"testing"
	"time"

	"ssr/internal/cluster"
	"ssr/internal/core"
	"ssr/internal/dag"
	"ssr/internal/driver"
	"ssr/internal/experiments"
	"ssr/internal/sim"
	"ssr/internal/stats"
	"ssr/internal/workload"
)

func quick() experiments.Params { return experiments.QuickParams() }

func BenchmarkFig1(b *testing.B) {
	var kmSlowdown float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1(42)
		if err != nil {
			b.Fatal(err)
		}
		kmSlowdown = res.Rows[0].Slowdown
	}
	b.ReportMetric(kmSlowdown, "kmeans-slowdown")
}

func BenchmarkFig4(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(quick())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range res.Rows {
			if row.Slowdown > worst {
				worst = row.Slowdown
			}
		}
	}
	b.ReportMetric(worst, "worst-slowdown")
}

func BenchmarkFig5(b *testing.B) {
	var samples int
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(quick())
		if err != nil {
			b.Fatal(err)
		}
		samples = len(res.Contended)
	}
	b.ReportMetric(float64(samples), "samples")
}

func BenchmarkFig6(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(42)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, row := range res.Rows {
			if row.Measured > worst {
				worst = row.Measured
			}
		}
	}
	b.ReportMetric(worst, "worst-task-slowdown")
}

func BenchmarkFig8(b *testing.B) {
	var u float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8()
		u = res.Rows[0].Points[5].Utilization
	}
	b.ReportMetric(u, "EU-alpha1.1-N20-P0.5")
}

func BenchmarkFig10(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Alpha == 1.6 && row.N == 200 {
				reduction = row.ReductionPct
			}
		}
	}
	b.ReportMetric(reduction, "reduction-pct-a1.6-N200")
}

func BenchmarkFig12(b *testing.B) {
	var worstSSR float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12(quick())
		if err != nil {
			b.Fatal(err)
		}
		worstSSR = 0
		for _, row := range res.Rows {
			if row.SSR && row.Slowdown > worstSSR {
				worstSSR = row.Slowdown
			}
		}
	}
	b.ReportMetric(worstSSR, "worst-ssr-slowdown")
}

func BenchmarkFig13(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(42)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(res.JCT1None) / float64(res.JCT1SSR)
	}
	b.ReportMetric(speedup, "pipelined-speedup")
}

func BenchmarkFig14(b *testing.B) {
	var improvement float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.App == "kmeans" && row.P == 0.2 {
				improvement = row.UtilImprovement
			}
		}
	}
	b.ReportMetric(improvement, "util-improvement-pct-P0.2")
}

func BenchmarkFig15(b *testing.B) {
	var sqlSSR float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Suite == "SQL" && row.Setting == "standard" && row.SSR {
				sqlSSR = row.Slowdown
			}
		}
	}
	b.ReportMetric(sqlSSR, "sql-ssr-slowdown")
}

func BenchmarkFig16(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig16(quick())
		if err != nil {
			b.Fatal(err)
		}
		spread = res.Rows[len(res.Rows)-1].Slowdown - res.Rows[0].Slowdown
	}
	b.ReportMetric(spread, "slowdown-spread-R1-vs-R0.1")
}

func BenchmarkFig17(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig17(quick())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.Alpha == 1.6 {
				reduction = row.ReductionPct
			}
		}
	}
	b.ReportMetric(reduction, "jct-reduction-pct-a1.6")
}

func BenchmarkBackgroundImpact(b *testing.B) {
	var delta float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.BackgroundImpact(quick())
		if err != nil {
			b.Fatal(err)
		}
		delta = res.MeanDeltaPct
	}
	b.ReportMetric(delta, "bg-delta-pct")
}

// --- Ablations -----------------------------------------------------------

// ablationRun executes a canonical contention scenario (one KMeans-like
// foreground job vs a batch backlog on 50 slots) under the given options
// and returns the foreground slowdown and the reserved-idle slot-time.
func ablationRun(b *testing.B, opts driver.Options, reshape float64, fgSpec workload.MLSpec) (float64, time.Duration) {
	b.Helper()
	const (
		nodes   = 25
		perNode = 2
		seed    = 99
	)
	eng := sim.New()
	cl, err := cluster.New(nodes, perNode)
	if err != nil {
		b.Fatal(err)
	}
	d, err := driver.New(eng, cl, opts)
	if err != nil {
		b.Fatal(err)
	}
	fg, err := fgSpec.Build(1, 10, 45*time.Second, stats.Stream(seed, "fg"))
	if err != nil {
		b.Fatal(err)
	}
	if reshape > 1 {
		fg, err = workload.ParetoReshape(fg, reshape, stats.Stream(seed, "reshape"))
		if err != nil {
			b.Fatal(err)
		}
	}
	bgCfg := workload.BackgroundConfig{
		Jobs:           60,
		Window:         3 * time.Minute,
		MeanTask:       40 * time.Second,
		Alpha:          1.6,
		DurationScale:  1,
		MaxParallelism: 30,
	}
	bg, err := workload.Background(bgCfg, 100, 1, stats.Stream(seed, "bg"))
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Submit(fg); err != nil {
		b.Fatal(err)
	}
	for _, j := range bg {
		if err := d.Submit(j); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Run(); err != nil {
		b.Fatal(err)
	}
	st, _ := d.Result(fg.ID)
	alone, err := driver.AloneJCT(fg, nodes, perNode, opts)
	if err != nil {
		b.Fatal(err)
	}
	return float64(st.JCT()) / float64(alone), d.Usage().ReservedIdleTime()
}

func ssrAblationOpts() driver.Options {
	return driver.Options{Mode: driver.ModeSSR, SSR: core.DefaultConfig()}
}

// BenchmarkAblationReservationModes compares the four reservation policies
// on the same scenario: none, timeout-based, static, and SSR (the paper's
// Sec. III-A baselines vs the contribution).
func BenchmarkAblationReservationModes(b *testing.B) {
	modes := []struct {
		name string
		opts driver.Options
	}{
		{name: "none", opts: driver.Options{Mode: driver.ModeNone}},
		{name: "timeout", opts: driver.Options{Mode: driver.ModeTimeout, Timeout: 10 * time.Second}},
		{name: "static", opts: driver.Options{
			Mode: driver.ModeStatic, StaticSlots: 20, StaticMinPriority: 10,
		}},
		{name: "ssr", opts: ssrAblationOpts()},
	}
	for _, m := range modes {
		m := m
		b.Run(m.name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				slow, _ = ablationRun(b, m.opts, 0, workload.KMeans)
			}
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationDeadline quantifies the deadline knob on heavy-tailed
// tasks: utilization loss at P=1 vs P=0.5.
func BenchmarkAblationDeadline(b *testing.B) {
	for _, p := range []float64{1.0, 0.5} {
		p := p
		name := "P1.0"
		if p < 1 {
			name = "P0.5"
		}
		b.Run(name, func(b *testing.B) {
			var idle time.Duration
			var slow float64
			for i := 0; i < b.N; i++ {
				opts := ssrAblationOpts()
				opts.SSR.IsolationP = p
				slow, idle = ablationRun(b, opts, 1.6, workload.KMeans)
			}
			b.ReportMetric(idle.Seconds(), "reserved-idle-slot-s")
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationMitigation measures straggler mitigation on vs off for
// a heavy-tailed foreground job.
func BenchmarkAblationMitigation(b *testing.B) {
	for _, mit := range []bool{false, true} {
		mit := mit
		name := "off"
		if mit {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				opts := ssrAblationOpts()
				opts.SSR.MitigateStragglers = mit
				slow, _ = ablationRun(b, opts, 1.6, workload.KMeans)
			}
			b.ReportMetric(slow, "fg-slowdown")
		})
	}
}

// BenchmarkAblationParallelismAwareness compares Algorithm 1's Case-2
// handling (known downstream parallelism, early release of m-n slots)
// against the Case-1 reserve-all fallback, on a shrinking-parallelism job.
func BenchmarkAblationParallelismAwareness(b *testing.B) {
	shrink := func(known bool) *dag.Job {
		rng := stats.Stream(5, "shrink")
		dist, err := stats.LogNormalWithMean(0.4, 4)
		if err != nil {
			b.Fatal(err)
		}
		phase := func(tasks int) dag.PhaseSpec {
			ds := make([]time.Duration, tasks)
			for i := range ds {
				ds[i] = time.Duration(dist.Sample(rng) * float64(time.Second))
			}
			return dag.PhaseSpec{Durations: ds}
		}
		opts := []dag.Option{dag.WithSubmit(45 * time.Second)}
		if known {
			opts = append(opts, dag.WithKnownParallelism())
		}
		j, err := dag.Chain(1, "shrinking", 10, []dag.PhaseSpec{
			phase(20), phase(20), phase(5), phase(5), phase(5),
		}, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return j
	}
	for _, known := range []bool{false, true} {
		known := known
		name := "reserve-all"
		if known {
			name = "parallelism-aware"
		}
		b.Run(name, func(b *testing.B) {
			var idle time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.New()
				cl, err := cluster.New(25, 2)
				if err != nil {
					b.Fatal(err)
				}
				d, err := driver.New(eng, cl, ssrAblationOpts())
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Submit(shrink(known)); err != nil {
					b.Fatal(err)
				}
				bg, err := workload.Background(workload.BackgroundConfig{
					Jobs: 40, Window: 3 * time.Minute, MeanTask: 40 * time.Second,
					Alpha: 1.6, DurationScale: 1, MaxParallelism: 30,
				}, 100, 1, stats.Stream(5, "bg"))
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range bg {
					if err := d.Submit(j); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Run(); err != nil {
					b.Fatal(err)
				}
				idle = d.Usage().ReservedIdleTime()
			}
			b.ReportMetric(idle.Seconds(), "reserved-idle-slot-s")
		})
	}
}

// BenchmarkAblationPreReservation compares SQL-style growing-parallelism
// jobs with pre-reservation effectively on (R=0.1) vs off (R=1).
func BenchmarkAblationPreReservation(b *testing.B) {
	for _, r := range []float64{0.1, 1.0} {
		r := r
		name := "R0.1"
		if r == 1.0 {
			name = "R1.0"
		}
		b.Run(name, func(b *testing.B) {
			var slow float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.Fig16(quick())
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range res.Rows {
					if row.R == r {
						slow = row.Slowdown
					}
				}
			}
			b.ReportMetric(slow, "sql-slowdown")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw discrete-event throughput on a
// large-scale contention run (4000 slots, ~2800 background jobs), reporting
// simulated events per second of wall time.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		cl, err := cluster.New(1000, 4)
		if err != nil {
			b.Fatal(err)
		}
		d, err := driver.New(eng, cl, ssrAblationOpts())
		if err != nil {
			b.Fatal(err)
		}
		bg, err := workload.Background(workload.BackgroundConfig{
			Jobs: 2800, Window: 10 * time.Minute, MeanTask: 60 * time.Second,
			Alpha: 1.6, DurationScale: 1, MaxParallelism: 60,
		}, 1, 1, stats.Stream(3, "bench-bg"))
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range bg {
			if err := d.Submit(j); err != nil {
				b.Fatal(err)
			}
		}
		start := time.Now()
		if err := d.Run(); err != nil {
			b.Fatal(err)
		}
		elapsed += time.Since(start)
		events += eng.Events()
	}
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "events/s")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

func BenchmarkFaultTolerance(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.FaultTolerance(quick())
		if err != nil {
			b.Fatal(err)
		}
		// Headline: baseline-minus-SSR slowdown gap at the harshest MTTF.
		n := len(res.Rows)
		gap = res.Rows[n-2].Slowdown - res.Rows[n-1].Slowdown
	}
	b.ReportMetric(gap, "none-minus-ssr-worst-mttf")
}

func BenchmarkMitigationComparison(b *testing.B) {
	var gapVsSpec float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MitigationComparison(quick())
		if err != nil {
			b.Fatal(err)
		}
		gapVsSpec = res.Rows[2].FgSlowdown - res.Rows[1].FgSlowdown
	}
	b.ReportMetric(gapVsSpec, "speculation-minus-reserved")
}
